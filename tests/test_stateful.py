"""Hypothesis stateful (rule-based) testing.

Two machines drive the library through arbitrary interleavings of
operations while maintaining a networkx model; every rule cross-checks a
random sample of queries, and invariants run between steps.  This explores
operation orderings no hand-written scenario covers.
"""

import networkx as nx
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.sliding_window import SWConnectivityEager
from repro.trees import DynamicForest

N = 12


class DynamicForestMachine(RuleBasedStateMachine):
    """Random link/cut/query interleavings vs a networkx model."""

    def __init__(self):
        super().__init__()
        self.forest = DynamicForest(N, seed=97)
        self.model = nx.Graph()
        self.model.add_nodes_from(range(N))
        self.next_eid = 0
        self.live: dict[int, tuple[int, int, float]] = {}

    @rule(
        u=st.integers(0, N - 1),
        v=st.integers(0, N - 1),
        w=st.integers(0, 30),
    )
    def link(self, u, v, w):
        if u == v or nx.has_path(self.model, u, v):
            return
        eid = self.next_eid
        self.next_eid += 1
        self.forest.batch_link([(u, v, float(w), eid)])
        self.model.add_edge(u, v, w=float(w), eid=eid)
        self.live[eid] = (u, v, float(w))

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False))
    def cut(self, pick):
        eid = pick.choice(sorted(self.live))
        u, v, _ = self.live.pop(eid)
        self.forest.batch_cut([eid])
        self.model.remove_edge(u, v)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def batch_mixed(self, data):
        # One combined cut + link propagation pass.
        cut_ids = data.draw(
            st.lists(st.sampled_from(sorted(self.live)), unique=True, max_size=3)
        )
        for eid in cut_ids:
            u, v, _ = self.live.pop(eid)
            self.model.remove_edge(u, v)
        links = []
        for _ in range(data.draw(st.integers(0, 3))):
            u = data.draw(st.integers(0, N - 1))
            v = data.draw(st.integers(0, N - 1))
            if u == v or nx.has_path(self.model, u, v):
                continue
            eid = self.next_eid
            self.next_eid += 1
            w = float(data.draw(st.integers(0, 30)))
            links.append((u, v, w, eid))
            self.model.add_edge(u, v, w=w, eid=eid)
            self.live[eid] = (u, v, w)
        self.forest.batch_update(links=links, cut_eids=cut_ids)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query_connectivity(self, u, v):
        assert self.forest.connected(u, v) == nx.has_path(self.model, u, v)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query_path_max(self, u, v):
        got = self.forest.path_max(u, v)
        if u == v or not nx.has_path(self.model, u, v):
            assert got is None
        else:
            path = nx.shortest_path(self.model, u, v)
            expect = max(
                (self.model[a][b]["w"], self.model[a][b]["eid"])
                for a, b in zip(path, path[1:])
            )
            assert got == expect

    @rule(v=st.integers(0, N - 1))
    def query_component_size(self, v):
        assert self.forest.component_size(v) == len(
            nx.node_connected_component(self.model, v)
        )

    @invariant()
    def counts_match(self):
        assert self.forest.num_edges == self.model.number_of_edges()
        assert self.forest.num_components == nx.number_connected_components(
            self.model
        )


class SlidingWindowMachine(RuleBasedStateMachine):
    """Random insert/expire interleavings vs window recomputation."""

    def __init__(self):
        super().__init__()
        self.sw = SWConnectivityEager(N, seed=13)
        self.stream: list[tuple[int, int]] = []
        self.tw = 0

    @rule(
        edges=st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)), max_size=5
        )
    )
    def insert(self, edges):
        batch = [e for e in edges if e[0] != e[1]]
        self.stream += batch
        self.sw.batch_insert(batch)

    @precondition(lambda self: len(self.stream) > self.tw)
    @rule(data=st.data())
    def expire(self, data):
        d = data.draw(st.integers(1, len(self.stream) - self.tw))
        self.tw += d
        self.sw.batch_expire(d)

    def _window_graph(self):
        g = nx.MultiGraph()
        g.add_nodes_from(range(N))
        g.add_edges_from(self.stream[self.tw :])
        return g

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query(self, u, v):
        assert self.sw.is_connected(u, v) == nx.has_path(self._window_graph(), u, v)

    @invariant()
    def component_count_matches(self):
        assert self.sw.num_components == nx.number_connected_components(
            self._window_graph()
        )
        assert self.sw.window_size == len(self.stream) - self.tw


TestDynamicForestStateful = DynamicForestMachine.TestCase
TestDynamicForestStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestSlidingWindowStateful = SlidingWindowMachine.TestCase
TestSlidingWindowStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
