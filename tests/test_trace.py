"""The trace format and recorder: CRC framing, torn tails, capture hooks.

Mirrors the WAL's crash contract tests in ``test_failure_injection.py``:
a trace file truncated at *every* byte offset inside its final line must
repair back to the durable prefix on open, with recording resuming on a
clean tail.  Plus the live-capture side: the ``ServiceConfig.recorder``
and ``QueryService(recorder=...)`` hooks record exactly the committed
rounds and answered batches, and a failing recorder never fails the
service (capture is best-effort by contract).
"""

from __future__ import annotations

import json
import threading
import zlib

import pytest

from repro.chaos.faults import FaultyIO
from repro.replication import ReplicatedService
from repro.service.query import QueryService
from repro.service.service import ServiceConfig, StreamService
from repro.sliding_window import SWConnectivityEager
from repro.trace import (
    TraceCorruption,
    TraceEvent,
    TraceRecorder,
    TraceWriter,
    decode_event,
    encode_event,
    ops_from_json,
    ops_to_json,
    read_trace,
    trace_summary,
)

N = 32
SEED = 5


def make_sw(engine=None):
    return SWConnectivityEager(N, seed=SEED, engine=engine)


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------


class TestEventFraming:
    def test_encode_decode_round_trip(self):
        ev = TraceEvent(
            seq=3,
            t_us=12345,
            kind="write",
            body={"lsn": 3, "ops": [["i", [[0, 1, 2.5]]], ["e", 2]]},
        )
        assert decode_event(encode_event(ev)) == ev

    def test_decode_rejects_flipped_payload(self):
        line = encode_event(
            TraceEvent(seq=0, t_us=0, kind="write", body={"lsn": 0, "ops": []})
        )
        doc = json.loads(line)
        doc["body"]["lsn"] = 7  # body no longer matches the CRC
        assert decode_event(json.dumps(doc)) is None

    def test_decode_rejects_unknown_kind(self):
        doc = {
            "seq": 0,
            "t_us": 0,
            "kind": "mystery",
            "body": {},
            "crc": zlib.crc32(b'[0,0,"mystery",{}]'),
        }
        assert decode_event(json.dumps(doc)) is None

    def test_decode_rejects_garbage(self):
        assert decode_event("not json at all") is None
        assert decode_event('{"seq": 1}') is None

    def test_encode_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            encode_event(TraceEvent(seq=0, t_us=0, kind="bogus", body={}))

    def test_ops_json_round_trip(self):
        ops = (("i", ((0, 1, 1.5), (2, 3, 0.25))), ("e", 4), ("i", ((5, 6),)))
        assert ops_from_json(ops_to_json(ops)) == ops

    def test_ops_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ops_from_json([["x", 1]])
        with pytest.raises(ValueError):
            ops_to_json([("x", 1)])


# ----------------------------------------------------------------------
# Writer + reader durability contract
# ----------------------------------------------------------------------


def write_sample_trace(path, events=5):
    with TraceWriter(path, meta={"who": "test"}) as w:
        for i in range(events):
            w.append(
                i * 1000, "write", {"lsn": i, "ops": [["i", [[i, i + 1]]]]}
            )
    return path


class TestTraceWriter:
    def test_write_and_read_back(self, tmp_path):
        path = write_sample_trace(tmp_path / "t.trace.jsonl")
        meta, events = read_trace(path)
        assert meta == {"who": "test"}
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert [e.t_us for e in events] == [0, 1000, 2000, 3000, 4000]

    def test_reopen_resumes_seq(self, tmp_path):
        path = write_sample_trace(tmp_path / "t.trace.jsonl", events=3)
        with TraceWriter(path) as w:
            assert w.next_seq == 3
            assert w.meta == {"who": "test"}  # header meta wins on resume
            w.append(9000, "control", {"knob": "budget", "value": 8})
        _, events = read_trace(path)
        assert len(events) == 4 and events[-1].kind == "control"

    def test_timestamps_clamped_monotone(self, tmp_path):
        with TraceWriter(tmp_path / "t.trace.jsonl") as w:
            w.append(5000, "write", {"lsn": 0, "ops": []})
            ev = w.append(100, "write", {"lsn": 1, "ops": []})
        assert ev.t_us == 5000

    def test_torn_tail_repaired_at_every_offset(self, tmp_path):
        """The WAL crash matrix, applied to the trace file: truncate
        inside the final line at every offset; reopen must repair back
        to the durable prefix and resume cleanly."""
        full = write_sample_trace(tmp_path / "full.trace.jsonl")
        raw = full.read_bytes()
        lines = raw[:-1].split(b"\n")  # header + 5 events
        durable_prefix = b"\n".join(lines[:-1]) + b"\n"
        for cut in range(len(durable_prefix) + 1, len(raw)):
            path = tmp_path / f"torn-{cut}.trace.jsonl"
            path.write_bytes(raw[:cut])
            # The reader stops silently before the torn tail.
            _, events = read_trace(path)
            assert [e.seq for e in events] == [0, 1, 2, 3], cut
            # The writer repairs and resumes on a clean tail.
            with TraceWriter(path) as w:
                assert w.next_seq == 4, cut
                w.append(10_000, "write", {"lsn": 4, "ops": []})
            _, events = read_trace(path)
            assert [e.seq for e in events] == [0, 1, 2, 3, 4], cut

    def test_torn_header_repaired(self, tmp_path):
        path = write_sample_trace(tmp_path / "t.trace.jsonl", events=1)
        raw = path.read_bytes()
        header_len = raw.index(b"\n") + 1
        for cut in range(1, header_len):
            torn = tmp_path / f"h-{cut}.trace.jsonl"
            torn.write_bytes(raw[:cut])
            with TraceWriter(torn, meta={"fresh": True}) as w:
                assert w.next_seq == 0
                w.append(0, "write", {"lsn": 0, "ops": []})
            meta, events = read_trace(torn)
            assert meta == {"fresh": True} and len(events) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = write_sample_trace(tmp_path / "t.trace.jsonl")
        raw = path.read_bytes()
        lines = raw[:-1].split(b"\n")
        lines[2] = lines[2][:10] + b"X" + lines[2][11:]  # damage event 1
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(TraceCorruption):
            read_trace(path)

    def test_seq_gap_raises(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        header = json.dumps({"trace": "repro.trace/v1", "meta": {}})
        e0 = encode_event(TraceEvent(seq=0, t_us=0, kind="write", body={}))
        e2 = encode_event(TraceEvent(seq=2, t_us=0, kind="write", body={}))
        path.write_text("\n".join([header, e0, e2]) + "\n")
        with pytest.raises(TraceCorruption):
            read_trace(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        e0 = encode_event(TraceEvent(seq=0, t_us=0, kind="write", body={}))
        path.write_text(e0 + "\n")
        with pytest.raises(TraceCorruption):
            read_trace(path)

    def test_failed_append_leaves_clean_tail(self, tmp_path):
        faults = FaultyIO(seed=3, p_write_error=1.0)
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, io=faults) as w:  # header appends disarmed
            w.append(0, "write", {"lsn": 0, "ops": []})
            faults.arm(max_faults=1)
            with pytest.raises(OSError):
                w.append(1000, "write", {"lsn": 1, "ops": []})
            faults.disarm()
            # The failed append repaired the tail; the retry lands clean.
            w.append(1000, "write", {"lsn": 1, "ops": []})
        _, events = read_trace(path)
        assert [e.seq for e in events] == [0, 1]

    def test_trace_summary(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, meta={"x": 1}) as w:
            w.append(0, "write", {"lsn": 0, "ops": [["i", [[0, 1], [1, 2]]]]})
            w.append(500, "write", {"lsn": 1, "ops": [["e", 1]]})
            w.append(900, "read", {"queries": [["components"]]})
        s = trace_summary(path)
        assert s["events"] == 3
        assert s["kinds"] == {"write": 2, "read": 1, "control": 0}
        assert s["items"] == 3  # two inserted edges + one expire op
        assert s["duration_us"] == 900
        assert s["meta"] == {"x": 1}

    def test_summary_of_missing_trace_is_zero(self, tmp_path):
        s = trace_summary(tmp_path / "nope.trace.jsonl")
        assert s["events"] == 0 and s["meta"] == {}


# ----------------------------------------------------------------------
# The recorder and the service capture hooks
# ----------------------------------------------------------------------


class TestTraceRecorder:
    def test_virtual_clock_injection(self, tmp_path):
        now = [0.0]
        rec = TraceRecorder(tmp_path / "t.trace.jsonl", clock=lambda: now[0])
        now[0] = 0.25
        ev = rec.record_round(0, (("i", ((0, 1),)),))
        assert ev.t_us == 250_000
        now[0] = 0.5
        ev = rec.record_read([("components",)], at_least=0)
        assert ev.t_us == 500_000
        assert ev.body == {"queries": [["components"]], "at_least": 0}
        ev = rec.record_control("budget", 32.0, reason="lag", observed=9.0)
        assert ev.body["knob"] == "budget" and ev.body["observed"] == 9.0
        rec.close()
        assert rec.events_recorded == 3

    def test_concurrent_records_keep_seq_dense(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.trace.jsonl")
        threads = [
            threading.Thread(
                target=lambda k=k: [
                    rec.record_round(k * 10 + i, (("e", 1),)) for i in range(10)
                ]
            )
            for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rec.close()
        _, events = read_trace(rec.path)
        assert [e.seq for e in events] == list(range(40))

    def test_service_commit_hook_records_rounds(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.trace.jsonl")
        cfg = ServiceConfig(flush_edges=10**9, recorder=rec)
        svc = StreamService(make_sw(), data_dir=tmp_path / "svc", config=cfg)
        svc.submit_insert([(0, 1), (1, 2)])
        svc.flush()
        svc.submit_insert([(2, 3)])
        svc.submit_expire(1)
        svc.flush()
        svc.close()
        rec.close()
        _, events = read_trace(rec.path)
        assert [e.kind for e in events] == ["write", "write"]
        assert events[0].body["lsn"] == 0
        assert ops_from_json(events[1].body["ops"]) == (
            ("i", ((2, 3),)),
            ("e", 1),
        )

    def test_recovery_replay_is_not_re_recorded(self, tmp_path):
        """The hook lives in the commit path only: reopening a service
        and replaying its WAL must not duplicate recorded rounds."""
        rec = TraceRecorder(tmp_path / "t.trace.jsonl")
        cfg = ServiceConfig(flush_edges=10**9, recorder=rec)
        svc = StreamService(make_sw(), data_dir=tmp_path / "svc", config=cfg)
        svc.submit_insert([(0, 1)])
        svc.flush()
        svc.close()
        svc2 = StreamService.open(tmp_path / "svc", make_sw, config=cfg)
        assert svc2.recovered_rounds == 1
        svc2.submit_insert([(1, 2)])
        svc2.flush()
        svc2.close()
        rec.close()
        _, events = read_trace(rec.path)
        assert [e.body["lsn"] for e in events] == [0, 1]

    def test_query_hook_records_reads(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.trace.jsonl")
        cfg = ServiceConfig(flush_edges=10**9, recorder=rec)
        svc = ReplicatedService(make_sw, tmp_path / "svc", config=cfg)
        qs = QueryService(svc, recorder=rec)
        lsn = svc.write([(0, 1), (1, 2)])
        qs.run([("connected", 0, 2), ("components",)], at_least=lsn)
        qs.run([("window_size",)], max_staleness=0)
        svc.close()
        rec.close()
        _, events = read_trace(rec.path)
        reads = [e for e in events if e.kind == "read"]
        assert len(reads) == 2
        assert reads[0].body["at_least"] == lsn
        assert reads[0].body["queries"] == [["connected", 0, 2], ["components"]]
        assert reads[1].body["max_staleness"] == 0

    def test_failing_recorder_never_fails_the_service(self, tmp_path):
        class ExplodingRecorder:
            def record_round(self, lsn, ops):
                raise RuntimeError("capture disk is gone")

            def record_read(self, queries, at_least=None, max_staleness=None):
                raise RuntimeError("capture disk is gone")

        cfg = ServiceConfig(flush_edges=10**9, recorder=ExplodingRecorder())
        svc = ReplicatedService(make_sw, tmp_path / "svc", config=cfg)
        qs = QueryService(svc, recorder=cfg.recorder)
        lsn = svc.write([(0, 1)])
        assert lsn == 0  # the commit survived the recorder
        res = qs.run([("components",)], at_least=lsn)
        assert res.answers[0] == N - 1  # and so did the read
        svc.close()
