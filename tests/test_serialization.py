"""Serialization: every structure must pickle and keep working.

RC trees are pointer-heavy (parent/child cycles), so round-tripping through
pickle is a real test: the restored structure must answer queries, accept
further batches, and stay snapshot-identical to the original evolving in
parallel.
"""

import pickle
import random

import pytest

from repro.applications import SingleLinkageClustering
from repro.core import BatchIncrementalMSF
from repro.orderedset import Treap
from repro.sliding_window import SWConnectivityEager
from repro.trees import DynamicForest


def roundtrip(x):
    return pickle.loads(pickle.dumps(x))


class TestForestPickle:
    def test_roundtrip_preserves_state(self):
        rng = random.Random(1)
        f = DynamicForest(30, seed=2)
        f.batch_link(
            [(rng.randrange(v), v, rng.random(), v) for v in range(1, 30)]
        )
        g = roundtrip(f)
        assert g.rc.snapshot() == f.rc.snapshot()
        assert g.edges() == f.edges()

    def test_roundtrip_then_update(self):
        f = DynamicForest(6, seed=3)
        f.batch_link([(0, 1, 1.0, 0), (1, 2, 2.0, 1)])
        g = roundtrip(f)
        # Both evolve identically after the copy.
        for s in (f, g):
            s.batch_update(links=[(3, 4, 5.0, 2)], cut_eids=[0])
        assert g.rc.snapshot() == f.rc.snapshot()
        assert g.path_max(1, 2) == f.path_max(1, 2)
        g.rc.check_invariants()

    def test_queries_after_roundtrip(self):
        f = DynamicForest(8, seed=4)
        f.batch_link([(i, i + 1, float(i + 1), i) for i in range(7)])
        g = roundtrip(f)
        assert g.component_diameter(0) == f.component_diameter(0)
        assert g.path_sum(0, 7) == f.path_sum(0, 7)
        assert g.eccentricity(3) == f.eccentricity(3)


class TestStructurePickle:
    def test_batch_msf(self):
        m = BatchIncrementalMSF(10, seed=5)
        m.batch_insert([(0, 1, 3.0), (1, 2, 1.0), (0, 2, 2.0)])
        m2 = roundtrip(m)
        assert m2.msf_edges() == m.msf_edges()
        r1 = m.batch_insert([(2, 3, 9.0)])
        r2 = m2.batch_insert([(2, 3, 9.0)])
        assert r1.inserted == r2.inserted
        assert m2.total_weight() == m.total_weight()

    def test_sliding_window(self):
        sw = SWConnectivityEager(8, seed=6)
        sw.batch_insert([(0, 1), (1, 2), (3, 4)])
        sw.batch_expire(1)
        sw2 = roundtrip(sw)
        assert sw2.num_components == sw.num_components
        for u in range(8):
            for v in range(8):
                assert sw2.is_connected(u, v) == sw.is_connected(u, v)
        sw2.batch_insert([(5, 6)])
        assert sw2.num_components == sw.num_components - 1

    def test_treap(self):
        t = Treap((k, k * k) for k in range(50))
        t2 = roundtrip(t)
        assert list(t2.items()) == list(t.items())
        t2.insert(100, -1)
        assert 100 in t2 and 100 not in t

    def test_clustering(self):
        sl = SingleLinkageClustering(6, seed=7)
        sl.batch_insert([(0, 1, 1.0), (1, 2, 4.0)])
        sl2 = roundtrip(sl)
        assert sl2.num_clusters(2.0) == sl.num_clusters(2.0)
        assert sl2.merge_distance(0, 2) == sl.merge_distance(0, 2)
