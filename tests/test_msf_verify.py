"""Tests for the Kruskal-tree path-maximum oracle and F-heavy filtering."""

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msf import EdgeArray, KruskalTreeOracle, filter_forest_heavy, kruskal_msf


def random_forest(n: int, rng: random.Random, p_link: float = 0.9) -> EdgeArray:
    """A random forest built by linking each vertex to a random earlier one."""
    rows = []
    for v in range(1, n):
        if rng.random() < p_link:
            rows.append((rng.randrange(v), v, rng.uniform(0, 1), len(rows)))
    return EdgeArray.from_tuples(n, rows)


def brute_path_max(forest: EdgeArray, u: int, v: int):
    g = nx.Graph()
    g.add_nodes_from(range(forest.n))
    for a, b, w, eid in forest.iter_tuples():
        g.add_edge(a, b, key=(w, eid))
    if u == v or not nx.has_path(g, u, v):
        return None
    path = nx.shortest_path(g, u, v)
    return max(g[a][b]["key"] for a, b in zip(path, path[1:]))


class TestOracleSmall:
    def test_path_of_three(self):
        f = EdgeArray.from_tuples(3, [(0, 1, 5.0, 0), (1, 2, 3.0, 1)])
        o = KruskalTreeOracle(f)
        w, eid, pos, conn = o.path_max([0], [2])
        assert conn[0]
        assert w[0] == 5.0 and eid[0] == 0 and pos[0] == 0

    def test_disconnected(self):
        f = EdgeArray.from_tuples(4, [(0, 1, 1.0)])
        o = KruskalTreeOracle(f)
        w, eid, _, conn = o.path_max([0], [3])
        assert not conn[0] and w[0] == -np.inf and eid[0] == -1

    def test_identical_endpoints_connected_no_edge(self):
        f = EdgeArray.from_tuples(2, [(0, 1, 1.0)])
        o = KruskalTreeOracle(f)
        w, _, _, conn = o.path_max([1], [1])
        assert conn[0] and w[0] == -np.inf

    def test_connected_helper(self):
        f = EdgeArray.from_tuples(4, [(0, 1, 1.0), (2, 3, 1.0)])
        o = KruskalTreeOracle(f)
        assert o.connected([0, 0], [1, 2]).tolist() == [True, False]

    def test_non_forest_input_raises(self):
        cyc = EdgeArray.from_tuples(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        with pytest.raises(ValueError):
            KruskalTreeOracle(cyc)

    def test_empty_forest(self):
        f = EdgeArray.from_tuples(3, [])
        o = KruskalTreeOracle(f)
        _, _, _, conn = o.path_max([0, 1], [1, 1])
        assert conn.tolist() == [False, True]


class TestOracleRandom:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 40)
        f = random_forest(n, rng)
        o = KruskalTreeOracle(f)
        us = [rng.randrange(n) for _ in range(30)]
        vs = [rng.randrange(n) for _ in range(30)]
        w, eid, pos, conn = o.path_max(us, vs)
        for i, (u, v) in enumerate(zip(us, vs)):
            expect = brute_path_max(f, u, v)
            if expect is None:
                assert u == v or not conn[i]
            else:
                assert (w[i], eid[i]) == expect
                assert f.w[pos[i]] == w[i] and f.eid[pos[i]] == eid[i]


class TestFHeavyFilter:
    def test_forest_edges_are_light(self):
        f = EdgeArray.from_tuples(3, [(0, 1, 1.0, 0), (1, 2, 2.0, 1)])
        light = filter_forest_heavy(f, f)
        assert light.tolist() == [0, 1]

    def test_heavy_edge_dropped(self):
        f = EdgeArray.from_tuples(3, [(0, 1, 1.0, 0), (1, 2, 2.0, 1)])
        q = EdgeArray.from_tuples(3, [(0, 2, 5.0, 7), (0, 2, 1.5, 8)])
        light = filter_forest_heavy(q, f)
        assert light.tolist() == [1]  # 5.0 > path max 2.0 is heavy; 1.5 light

    def test_cross_component_edges_kept(self):
        f = EdgeArray.from_tuples(4, [(0, 1, 1.0, 0)])
        q = EdgeArray.from_tuples(4, [(1, 2, 100.0, 5)])
        assert filter_forest_heavy(q, f).tolist() == [0]

    def test_filter_preserves_msf(self):
        # The true MSF must survive F-heavy filtering for any sampled forest.
        rng = random.Random(3)
        n, m = 40, 200
        rows = [
            (rng.randrange(n), rng.randrange(n), rng.uniform(0, 1), i)
            for i in range(m)
        ]
        e = EdgeArray.from_tuples(n, rows)
        msf_pos = set(kruskal_msf(e).tolist())
        sample_idx = np.array([i for i in range(m) if rng.random() < 0.5], dtype=np.int64)
        sampled = e.take(sample_idx)
        f = sampled.take(kruskal_msf(sampled))
        light = set(filter_forest_heavy(e, f).tolist())
        assert msf_pos <= light


@settings(max_examples=40, deadline=None)
@given(data=st.data(), n=st.integers(2, 20))
def test_property_oracle_vs_brute(data, n):
    link = data.draw(
        st.lists(st.tuples(st.booleans(), st.floats(0, 1)), min_size=n - 1, max_size=n - 1)
    )
    rows = []
    for v, (keep, w) in enumerate(link, start=1):
        if keep:
            parent = data.draw(st.integers(0, v - 1))
            rows.append((parent, v, float(w), len(rows)))
    f = EdgeArray.from_tuples(n, rows)
    o = KruskalTreeOracle(f)
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    w, eid, _, conn = o.path_max([u], [v])
    expect = brute_path_max(f, u, v)
    if expect is None:
        assert u == v or not conn[0]
    else:
        assert (w[0], eid[0]) == expect
