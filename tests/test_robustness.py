"""Robustness: long mixed workloads, cross-structure determinism, and
parallel read-only queries.

The soak test drives every layer at once (batch MSF inserts feeding a
sliding window with interleaved expiry) for hundreds of rounds with
periodic invariant checks; the determinism tests pin the pure-function
property end to end; the scheduler test shows concurrent readers observe
consistent answers (queries never mutate the structures).
"""

import random

import networkx as nx
import pytest

from repro.core import BatchIncrementalMSF
from repro.msf import EdgeArray, kruskal_msf
from repro.runtime import ThreadPoolScheduler
from repro.sliding_window import SWConnectivityEager
from repro.trees import DynamicForest


class TestSoak:
    def test_long_mixed_workload(self):
        rng = random.Random(99)
        n = 64
        msf = BatchIncrementalMSF(n, seed=9)
        all_edges = []
        for round_ in range(120):
            batch = []
            for _ in range(rng.randrange(1, 10)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    batch.append((u, v, round(rng.uniform(0, 50), 2), len(all_edges) + len(batch)))
            msf.batch_insert(batch)
            all_edges.extend(batch)
            if round_ % 20 == 19:
                msf.forest.rc.check_invariants()
                ea = EdgeArray.from_tuples(n, all_edges)
                expect = sorted(ea.eid[kruskal_msf(ea)].tolist())
                assert sorted(e[3] for e in msf.msf_edges()) == expect

    def test_long_window_workload(self):
        rng = random.Random(7)
        n = 48
        sw = SWConnectivityEager(n, seed=3)
        stream, tw = [], 0
        for round_ in range(150):
            batch = [(rng.randrange(n), rng.randrange(n)) for _ in range(rng.randrange(1, 6))]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if len(stream) - tw > 100:
                d = len(stream) - tw - 100
                tw += d
                sw.batch_expire(d)
            if round_ % 30 == 29:
                g = nx.MultiGraph()
                g.add_nodes_from(range(n))
                g.add_edges_from(stream[tw:])
                assert sw.num_components == nx.number_connected_components(g)
                sw._msf.forest.rc.check_invariants()

    def test_repeated_fill_and_drain(self):
        # Ternarization copies persist after a drain (slots are recycled, so
        # space is bounded by the high-water degree): the structure reaches a
        # steady state after the first fill/drain cycle and must return to it
        # exactly on every later cycle.
        f = DynamicForest(32, seed=4)
        links = [(i, i + 1, float(i), i) for i in range(31)]
        f.batch_link(links)
        f.batch_cut([eid for _, _, _, eid in links])
        steady_empty = f.rc.snapshot()
        copies = f.ternary.num_copies
        for _ in range(4):
            f.batch_link(links)
            assert f.num_components == 1
            f.batch_cut([eid for _, _, _, eid in links])
            assert f.num_components == 32
            assert f.rc.snapshot() == steady_empty
            assert f.ternary.num_copies == copies  # slots recycled, no growth


class TestDeterminism:
    def _drive(self, seed: int):
        rng = random.Random(1234)  # identical workload both runs
        m = BatchIncrementalMSF(50, seed=seed)
        for _ in range(25):
            batch = []
            for _ in range(rng.randrange(1, 8)):
                u, v = rng.randrange(50), rng.randrange(50)
                if u != v:
                    batch.append((u, v, rng.uniform(0, 9)))
            m.batch_insert(batch)
        return m

    def test_identical_runs_identical_state(self):
        a = self._drive(seed=11)
        b = self._drive(seed=11)
        assert a.msf_edges() == b.msf_edges()
        assert a.forest.rc.snapshot() == b.forest.rc.snapshot()
        assert a.cost.work == b.cost.work and a.cost.span == b.cost.span

    def test_msf_is_seed_independent(self):
        # Contraction coins change the RC tree, never the MSF.
        a = self._drive(seed=11)
        b = self._drive(seed=999)
        assert a.msf_edges() == b.msf_edges()
        assert a.forest.rc.snapshot() != b.forest.rc.snapshot()


class TestParallelReaders:
    def test_concurrent_queries_consistent(self):
        rng = random.Random(2)
        n = 256
        f = DynamicForest(n, seed=8)
        f.batch_link(
            [(rng.randrange(v), v, rng.uniform(0, 5), v) for v in range(1, n)]
        )
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
        sequential = [f.path_max(u, v) if u != v else None for u, v in pairs]
        with ThreadPoolScheduler(max_workers=8) as pool:
            parallel = pool.map(
                lambda p: f.path_max(p[0], p[1]) if p[0] != p[1] else None, pairs
            )
        assert parallel == sequential

    def test_concurrent_component_queries(self):
        n = 128
        f = DynamicForest(n, seed=8)
        f.batch_link([(i, i + 1, 1.0, i) for i in range(n - 1)])
        with ThreadPoolScheduler(max_workers=4) as pool:
            sizes = pool.map(f.component_size, range(n))
        assert sizes == [n] * n
