"""Replication subsystem: segmented WAL, followers, failover, batch reads.

The split-brain section is the acceptance test of the epoch fencing
design: a promoted follower takes over the log under epoch ``e+1`` while
the deposed primary (a *zombie* that never learned it lost) keeps
appending under ``e`` -- every reader must side with the new epoch, and
the zombie's post-promotion rounds (and checkpoints) must be rejected on
replay, tailing, and recovery alike.
"""

from __future__ import annotations

import random

import pytest

from repro.graphgen.streams import bursty_stream
from repro.replication import Follower, FollowerDead, ReplicatedService
from repro.service import (
    SegmentedWal,
    ServiceConfig,
    SnapshotStore,
    StreamService,
    WalCorruption,
    WalCursor,
    WalTruncated,
    WriteAheadLog,
    read_wal_dir,
    wal_summary,
)
from repro.service.query import (
    QueryService,
    StalenessExceeded,
    UnsupportedQuery,
)
from repro.sliding_window import SWConnectivityEager

N = 24
SEED = 13
OPS = [("i", ((0, 1),))]  # one minimal insert round for WAL-level tests


def make_sw(engine=None):
    return SWConnectivityEager(N, seed=SEED, engine=engine)


def fingerprint(sw):
    return (
        sw.num_components,
        sorted(sw.forest_edges()),
        sw._msf.forest.rc.snapshot(),
    )


def stream_rounds(rounds=8, seed=SEED):
    rng = random.Random(seed)
    return bursty_stream(
        N, rounds=rounds, base_batch=4, burst_batch=10, window=20, rng=rng
    )


def svc_config(**kw):
    kw.setdefault("flush_edges", 10**9)
    kw.setdefault("snapshot_every", 3)
    kw.setdefault("retain_snapshots", 2)
    return ServiceConfig(**kw)


# ----------------------------------------------------------------------
# Segmented WAL
# ----------------------------------------------------------------------


class TestSegmentedWal:
    def test_append_rotate_reopen(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(3):
            wal.append(OPS)
        wal.rotate()
        for _ in range(2):
            wal.append(OPS)
        assert wal.next_lsn == 5
        assert len(wal.segments()) == 2
        wal.close()
        # Reopening resumes in the tail segment.
        wal2 = SegmentedWal(tmp_path)
        assert wal2.next_lsn == 5
        assert wal2.append(OPS) == 5
        records, base = read_wal_dir(tmp_path)
        assert base == 0
        assert [r.lsn for r in records] == list(range(6))
        wal2.close()

    def test_truncate_drops_only_dead_segments(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(3):
            wal.append(OPS)
        wal.rotate()  # segment [0,3) sealed
        for _ in range(2):
            wal.append(OPS)
        assert wal.truncate_before(2) == 0  # segment still contributes lsn 2
        assert wal.truncate_before(3) == 1
        assert wal.base_lsn == 3
        records, base = read_wal_dir(tmp_path)
        assert base == 3 and [r.lsn for r in records] == [3, 4]
        # The active tail is never deleted, however far truncation asks.
        assert wal.truncate_before(10**9) == 0
        wal.close()

    def test_reset_to_fences_old_chain(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(5):
            wal.append(OPS)
        wal.reset_to(3, epoch=1)
        assert wal.next_lsn == 3 and wal.epoch == 1
        wal.append(OPS)
        records, _ = read_wal_dir(tmp_path)
        # Rounds 3 and 4 of epoch 0 lost to the epoch-1 chain.
        assert [(r.lsn, r.epoch) for r in records] == [
            (0, 0), (1, 0), (2, 0), (3, 1),
        ]
        with pytest.raises(ValueError, match="strictly newer epoch"):
            wal.reset_to(2, epoch=1)
        wal.close()

    def test_equal_epoch_overlap_is_corruption(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(3):
            wal.append(OPS)
        wal.close()
        # A second writer claiming lsn 1 under the same epoch: fencing
        # failed, and no automatic repair is safe.
        rogue = WriteAheadLog(
            tmp_path / "wal-000000000001-000000.jsonl", start=1
        )
        rogue.append(OPS)
        rogue.close()
        with pytest.raises(WalCorruption, match="two writers"):
            read_wal_dir(tmp_path)

    def test_wal_summary(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(4):
            wal.append(OPS)
        wal.rotate()
        wal.append(OPS)
        s = wal_summary(tmp_path)
        assert s["segments"] == 2
        assert (s["base_lsn"], s["next_lsn"], s["rounds"]) == (0, 5, 5)
        assert s["bytes"] > 0 and s["epoch"] == 0
        wal.close()

    def test_report_wal_cli(self, tmp_path, capsys):
        from repro.report import main

        svc = StreamService(
            make_sw(), data_dir=tmp_path / "svc", config=svc_config()
        )
        svc.submit_insert([(0, 1), (1, 2)])
        svc.flush()
        svc.close()
        assert main(["--wal", str(tmp_path / "svc")]) == 0
        out = capsys.readouterr().out
        assert "segment" in out and "lsn [0, 1)" in out
        assert main(["--wal", str(tmp_path / "empty")]) == 1

    def test_report_wal_cli_corrupt_segment(self, tmp_path, capsys):
        # Inspection must diagnose a damaged log with a clean exit code,
        # never a traceback.
        from repro.report import main
        from repro.service.service import WAL_DIRNAME

        svc = StreamService(
            make_sw(), data_dir=tmp_path, config=svc_config(snapshot_every=0)
        )
        for _ in range(3):
            svc.submit_insert([(0, 1)])
            svc.flush()
        svc.close()
        seg = next((tmp_path / WAL_DIRNAME).glob("wal-*.jsonl"))
        lines = seg.read_bytes().splitlines(keepends=True)
        # Damage a record *before* the tail: unambiguous corruption, not
        # a torn tail the reader would repair silently.
        lines[1] = b'{"garbage": true}\n'
        seg.write_bytes(b"".join(lines))
        assert main(["--wal", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "corrupt WAL" in err

    def test_report_wal_cli_empty_wal_dir(self, tmp_path, capsys):
        # A data dir whose wal/ exists but holds no segments yet (crashed
        # before the first append) renders as zero rounds, exit 0.
        from repro.report import main
        from repro.service.service import WAL_DIRNAME

        (tmp_path / WAL_DIRNAME).mkdir(parents=True)
        assert main(["--wal", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 segment(s)" in out and "lsn [0, 0)" in out

    def test_report_wal_cli_mixed_epoch_leftovers(self, tmp_path, capsys):
        # After a failover the directory holds the zombie's segments next
        # to the new epoch's chain; the summary must side with the
        # winning (highest-epoch) chain, exactly like recovery.
        from repro.report import main

        svc = ReplicatedService(
            make_sw, tmp_path, svc_config(snapshot_every=0), followers=1
        )
        for rnd in stream_rounds(4):
            svc.write(rnd.edges, rnd.expire)
        svc.poll()
        zombie = svc.promote(svc.followers[0])
        zombie.submit_insert([(2, 3)])
        zombie.flush()  # stale-epoch append, rejected by every reader
        svc.write([(4, 5)])
        new_epoch = svc.epoch
        svc.close()
        assert main(["--wal", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"epoch {new_epoch}" in out


class TestWalCursor:
    def test_tails_across_rotation(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        cur = WalCursor(tmp_path)
        wal.append(OPS)
        assert [r.lsn for r in cur.poll()] == [0]
        assert cur.poll() == []
        wal.append(OPS)
        wal.rotate()
        wal.append(OPS)
        assert [r.lsn for r in cur.poll()] == [1, 2]
        wal.close()

    def test_max_records_is_incremental(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(5):
            wal.append(OPS)
        cur = WalCursor(tmp_path)
        assert [r.lsn for r in cur.poll(max_records=2)] == [0, 1]
        assert [r.lsn for r in cur.poll(max_records=2)] == [2, 3]
        assert [r.lsn for r in cur.poll()] == [4]
        wal.close()

    def test_truncated_position_raises(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(3):
            wal.append(OPS)
        wal.rotate()
        wal.append(OPS)
        wal.truncate_before(3)
        cur = WalCursor(tmp_path, next_lsn=1)
        with pytest.raises(WalTruncated):
            cur.poll()
        wal.close()

    def test_fenced_cursor_rejects_zombie_records(self, tmp_path):
        wal = SegmentedWal(tmp_path)
        for _ in range(4):
            wal.append(OPS)
        cur = WalCursor(tmp_path)
        assert len(cur.poll(max_records=2)) == 2
        # Promotion at lsn 3: a new epoch-1 segment takes over, while the
        # zombie writer appends round 3 (and more) under epoch 0.
        new = SegmentedWal(tmp_path)
        new.reset_to(3, epoch=1)
        wal.append(OPS)  # zombie's round 3 (stale epoch)
        cur.fence(3, 1)
        got = cur.poll()
        # Round 2 still replays; zombie's round 3 is rejected, the
        # epoch-1 round 3 is accepted instead once it lands.
        assert [(r.lsn, r.epoch) for r in got] == [(2, 0)]
        new.append(OPS)
        got = cur.poll()
        assert [(r.lsn, r.epoch) for r in got] == [(3, 1)]
        assert cur.fenced_rejections >= 1
        wal.close()
        new.close()


# ----------------------------------------------------------------------
# WAL growth bound + legacy layout
# ----------------------------------------------------------------------


class TestWalGrowth:
    def test_rotation_and_truncation_bound_the_log(self, tmp_path):
        cfg = svc_config(snapshot_every=2, retain_snapshots=2)
        svc = StreamService(make_sw(), data_dir=tmp_path, config=cfg)
        for b in stream_rounds(rounds=12):
            svc.submit(b)
            svc.flush()
        svc.close()
        s = wal_summary(tmp_path / "wal")
        assert s["next_lsn"] == 12
        # Oldest retained snapshot is at lsn 9 (cadence 2, retain 2), so
        # only rounds > 9 plus the fresh tail segment survive.
        assert s["base_lsn"] > 0
        assert s["rounds"] <= cfg.snapshot_every * cfg.retain_snapshots
        # And recovery from the bounded log still works, byte-identically.
        svc2 = StreamService.open(tmp_path, make_sw, config=cfg)
        direct = make_sw()
        for b in stream_rounds(rounds=12):
            direct.batch_insert(list(b.edges))
            if b.expire:
                direct.batch_expire(b.expire)
        assert fingerprint(svc2.structure) == fingerprint(direct)
        svc2.close()

    def test_legacy_single_file_wal_migrates(self, tmp_path):
        legacy = WriteAheadLog(tmp_path / "wal.jsonl")
        legacy.append([("i", ((0, 1), (1, 2)))])
        legacy.append([("e", 1)])
        legacy.close()
        svc = StreamService.open(tmp_path, make_sw, config=svc_config())
        assert svc.next_lsn == 2
        assert not (tmp_path / "wal.jsonl").exists()
        assert (tmp_path / "wal" / "wal-000000000000-000000.jsonl").exists()
        direct = make_sw()
        direct.batch_insert([(0, 1), (1, 2)])
        direct.batch_expire(1)
        assert fingerprint(svc.structure) == fingerprint(direct)
        svc.close()


# ----------------------------------------------------------------------
# Followers
# ----------------------------------------------------------------------


class TestFollower:
    def _primary(self, tmp_path, rounds=8, **cfg):
        svc = StreamService(
            make_sw(), data_dir=tmp_path, config=svc_config(**cfg)
        )
        for b in stream_rounds(rounds=rounds):
            svc.submit(b)
            svc.flush()
        return svc

    def test_bootstrap_plus_tail_matches_primary(self, tmp_path):
        svc = self._primary(tmp_path)
        f = Follower(0, tmp_path, make_sw)
        # snapshot_every=3 over 8 rounds: bootstrap starts past lsn 0.
        assert f.replayed_lsn > 0
        f.catch_up()
        assert f.replayed_lsn == svc.next_lsn
        assert fingerprint(f.structure) == fingerprint(svc.structure)
        svc.close()

    def test_kill_then_restart_retails(self, tmp_path):
        svc = self._primary(tmp_path)
        f = Follower(0, tmp_path, make_sw)
        f.catch_up(max_records=2)
        f.kill()
        with pytest.raises(FollowerDead):
            f.query(lambda s: s.num_components)
        with pytest.raises(FollowerDead):
            f.catch_up()
        f.restart()
        f.catch_up()
        assert fingerprint(f.structure) == fingerprint(svc.structure)
        svc.close()

    def test_rebootstraps_after_truncation(self, tmp_path):
        # The primary truncates aggressively; a follower that never
        # replayed anything must fall back to snapshot bootstrap.
        svc = self._primary(
            tmp_path, rounds=10, snapshot_every=2, retain_snapshots=1
        )
        f = Follower(0, tmp_path, make_sw)
        f.catch_up()
        assert fingerprint(f.structure) == fingerprint(svc.structure)
        svc.close()


# ----------------------------------------------------------------------
# ReplicatedService: writes, lag, promotion, split brain
# ----------------------------------------------------------------------


class TestReplicatedService:
    def test_write_tokens_and_lag(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, svc_config(), followers=2
        ) as rs:
            tokens = [
                rs.write([(i, i + 1)]) for i in range(5)
            ]
            assert tokens == list(range(5))
            assert set(rs.lag().values()) == {5}
            rs.poll()
            assert set(rs.lag().values()) == {0}
            assert rs.write() == 4  # empty write: newest committed token

    def test_background_replication_converges(self, tmp_path):
        import time

        with ReplicatedService(
            make_sw, tmp_path, svc_config(), followers=2
        ) as rs:
            rs.start_replication(interval=0.001)
            for b in stream_rounds(rounds=6):
                rs.write(b.edges, expire=b.expire)
            deadline = time.monotonic() + 5.0
            while any(rs.lag().values()) and time.monotonic() < deadline:
                time.sleep(0.002)
            assert set(rs.lag().values()) == {0}
            want = rs.primary.query(fingerprint)
            for f in rs.followers:
                assert f.query(fingerprint) == want

    def test_promote_caught_up_follower(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, svc_config(), followers=2
        ) as rs:
            for b in stream_rounds(rounds=6):
                rs.write(b.edges, expire=b.expire)
            want = rs.primary.query(fingerprint)
            tip = rs.primary.next_lsn
            old = rs.promote(rs.followers[0])
            assert rs.epoch == 1
            assert rs.primary.next_lsn == tip  # catch_up lost nothing
            assert rs.primary.query(fingerprint) == want
            old.close()

    def test_promote_requires_most_caught_up(self, tmp_path):
        # snapshot_every=0: no truncation, so partial catch-up really
        # leaves the follower lagged (truncation would force a bootstrap
        # jump past the retained base).
        with ReplicatedService(
            make_sw, tmp_path, svc_config(snapshot_every=0), followers=2
        ) as rs:
            for b in stream_rounds(rounds=6):
                rs.write(b.edges, expire=b.expire)
            a, b_ = rs.followers
            a.catch_up(max_records=2)
            b_.catch_up()
            with pytest.raises(ValueError, match="behind"):
                rs.promote(a, catch_up=False)

    def test_promotion_without_catch_up_discards_tail(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, svc_config(snapshot_every=0), followers=1
        ) as rs:
            for b in stream_rounds(rounds=6):
                rs.write(b.edges, expire=b.expire)
            f = rs.followers[0]
            f.catch_up(max_records=4)  # rounds 4 and 5 never replicated
            old = rs.promote(f, catch_up=False)
            assert rs.primary.next_lsn == 4
            # The discarded rounds are gone from the durable timeline.
            records, _ = read_wal_dir(tmp_path / "wal")
            assert max(r.lsn for r in records) == 3
            old.close()

    def test_split_brain_zombie_is_fenced(self, tmp_path):
        rs = ReplicatedService(
            make_sw, tmp_path, svc_config(snapshot_every=0), followers=2
        )
        for b in stream_rounds(rounds=6):
            rs.write(b.edges, expire=b.expire)
        lagged = rs.followers[1]
        lagged.catch_up(max_records=3)  # mid-segment when the fence lands
        rs.followers[0].catch_up()
        zombie = rs.promote(rs.followers[0])

        # Split brain: both "primaries" accept writes for a while.
        zombie.submit_insert([(0, 1), (1, 2), (2, 3)])
        zombie.flush()
        new_token = rs.write([(4, 5)])
        assert new_token == 6

        # The lagged follower replays the shared prefix, *rejects* the
        # zombie's round 6, and lands on the new primary's timeline.
        rs.poll()
        assert lagged.cursor.fenced_rejections >= 1
        assert lagged.replayed_lsn == 7
        assert lagged.query(fingerprint) == rs.primary.query(fingerprint)

        # Recovery from the shared directory also sides with the winner
        # -- even though the zombie wrote *more* rounds.
        want = rs.primary.query(fingerprint)
        rs.close()
        zombie.close()
        svc = StreamService.open(tmp_path, make_sw, config=svc_config())
        assert svc.epoch == 1
        assert fingerprint(svc.structure) == want
        svc.close()

    def test_zombie_checkpoints_are_rejected_on_recovery(self, tmp_path):
        # A zombie that keeps running long enough will checkpoint fenced
        # state; recovery must skip those checkpoints.
        cfg = svc_config(snapshot_every=2)
        rs = ReplicatedService(make_sw, tmp_path, cfg, followers=1)
        for b in stream_rounds(rounds=4):
            rs.write(b.edges, expire=b.expire)
        zombie = rs.promote(rs.followers[0])
        for i in range(4):  # crosses the zombie's snapshot cadence
            zombie.submit_insert([(i, i + 1)])
            zombie.flush()
        assert any(
            lsn >= 4
            for lsn in SnapshotStore(tmp_path / "snapshots").lsns()
        )
        want = rs.primary.query(fingerprint)
        rs.close()
        zombie.close()
        svc = StreamService.open(tmp_path, make_sw, config=cfg)
        assert fingerprint(svc.structure) == want
        svc.close()


# ----------------------------------------------------------------------
# QueryService
# ----------------------------------------------------------------------


class TestQueryService:
    def _rs(self, tmp_path, followers=2):
        return ReplicatedService(
            make_sw, tmp_path, svc_config(), followers=followers
        )

    def test_read_your_writes_catch_up(self, tmp_path):
        with self._rs(tmp_path) as rs:
            qs = QueryService(rs)
            token = rs.write([(0, 1), (1, 2)])
            res = qs.run(
                [("connected", 0, 2), ("components",), ("window_size",)],
                at_least=token,
            )
            assert res.replica.startswith("follower")
            assert res.lsn > token
            assert res.answers[0] is True
            assert res.answers == rs.primary.query(
                lambda s: [s.is_connected(0, 2), s.num_components, s.window_size]
            )

    def test_batched_pair_queries_match_singles(self, tmp_path):
        with self._rs(tmp_path) as rs:
            for b in stream_rounds(rounds=6):
                rs.write(b.edges, expire=b.expire)
            token = rs.write()
            pairs = [(u, v) for u in range(0, N, 3) for v in range(1, N, 5)]
            qs = QueryService(rs)
            res = qs.run(
                [("connected", u, v) for u, v in pairs]
                + [("path_max", u, v) for u, v in pairs],
                at_least=token,
            )
            direct = rs.primary.query(
                lambda s: [s.is_connected(u, v) for u, v in pairs]
                + [None if u == v else s.heaviest_edge(u, v) for u, v in pairs]
            )
            assert res.answers == direct

    def test_zero_followers_redirects_to_primary(self, tmp_path):
        with self._rs(tmp_path, followers=0) as rs:
            token = rs.write([(0, 1)])
            res = QueryService(rs).run([("connected", 0, 1)], at_least=token)
            assert res.replica == "primary"
            assert res.answers == [True]

    def test_wait_policy_blocks_until_replayed(self, tmp_path):
        with self._rs(tmp_path) as rs:
            rs.start_replication(interval=0.001)
            qs = QueryService(rs, on_lag="wait", wait_timeout=5.0)
            token = rs.write([(2, 3)])
            res = qs.run([("connected", 2, 3)], at_least=token)
            assert res.answers == [True]
            assert res.lsn > token

    def test_wait_policy_times_out(self, tmp_path):
        with self._rs(tmp_path) as rs:
            token = rs.write([(0, 1)])  # nobody replicates it
            qs = QueryService(rs, on_lag="wait", wait_timeout=0.05)
            with pytest.raises(StalenessExceeded):
                qs.run([("connected", 0, 1)], at_least=token)

    def test_max_staleness_escape_hatch(self, tmp_path):
        with self._rs(tmp_path) as rs:
            rs.write([(0, 1)])
            rs.poll()
            for i in range(3):
                rs.write([(i + 1, i + 2)])  # followers now lag by 3
            res = QueryService(rs).run([("window_size",)], max_staleness=3)
            assert res.replica.startswith("follower")
            with pytest.raises(StalenessExceeded):
                QueryService(rs, on_lag="wait", wait_timeout=0.05).run(
                    [("window_size",)], max_staleness=1
                )

    def test_unsupported_query_raises(self, tmp_path):
        with self._rs(tmp_path) as rs:
            token = rs.write([(0, 1)])
            qs = QueryService(rs)
            with pytest.raises(UnsupportedQuery):
                qs.run([("weight",)], at_least=token)  # no .weight here
            with pytest.raises(UnsupportedQuery):
                qs.run([("no-such-kind",)], at_least=token)

    def test_dead_followers_fall_back_to_primary(self, tmp_path):
        with self._rs(tmp_path) as rs:
            token = rs.write([(0, 1)])
            rs.poll()
            for f in rs.followers:
                f.kill()
            res = QueryService(rs).run([("connected", 0, 1)], at_least=token)
            assert res.replica == "primary"
            assert res.answers == [True]


# ----------------------------------------------------------------------
# Kill matrix: a follower killed at every replay offset re-tails to
# byte-identical state, on both engines (the ISSUE acceptance criterion).
# ----------------------------------------------------------------------

KM_ROUNDS = 6


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["object", "array"])
class TestFollowerKillMatrix:
    def test_kill_at_every_replay_offset(self, tmp_path, engine):
        def factory():
            return make_sw(engine=engine)

        svc = StreamService(
            factory(),
            data_dir=tmp_path,
            config=svc_config(snapshot_every=2),
        )
        for b in stream_rounds(rounds=KM_ROUNDS):
            svc.submit(b)
            svc.flush()
        want = fingerprint(svc.structure)

        uninterrupted = Follower(99, tmp_path, factory)
        uninterrupted.catch_up()
        assert fingerprint(uninterrupted.structure) == want

        for offset in range(KM_ROUNDS + 1):
            f = Follower(offset, tmp_path, factory)
            start = f.replayed_lsn  # snapshot bootstrap may skip ahead
            if offset > start:
                f.catch_up(max_records=offset - start)
            f.kill()
            f.restart()
            f.catch_up()
            assert f.replayed_lsn == KM_ROUNDS, (engine, offset)
            assert fingerprint(f.structure) == want, (engine, offset)
        svc.close()
