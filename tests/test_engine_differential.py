"""Cross-engine differential tests: object vs array RC-tree engines.

The array engine (``repro.trees.rcarray``) is required to be *extensionally
identical* to the object engine: same query answers, same compressed path
trees, same maintained MSF, and -- because both charge the simulated cost
model through the same accounting contract -- the same work/span for every
operation.  Hypothesis drives both engines through identical random batch
streams and compares everything after every step.

Seeded determinism rides along: a (stream, seed) pair must reproduce
byte-identical MSF edge ids and phase trees on *both* engines across
independent runs, which is what makes the benchmark A/B comparisons in
``benchmarks/`` meaningful.
"""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchIncrementalMSF
from repro.msf.graph import EdgeArray
from repro.msf.kruskal import kruskal_msf
from repro.runtime import CostModel, measure
from repro.trees import DynamicForest

# Small vertex counts + a coarse weight pool force collisions: parallel
# edges, weight ties (broken by eid), repeated endpoints, self-loops.
N = 12
_VERTS = st.integers(0, N - 1)
_WEIGHT = st.integers(0, 6).map(float)
_EDGE = st.tuples(_VERTS, _VERTS, _WEIGHT)
_BATCHES = st.lists(st.lists(_EDGE, max_size=12), min_size=1, max_size=6)

# A fixed query sample covering every vertex at least once (the full
# O(n^2) sweep per step would dominate the suite's runtime).
_QUERY_PAIRS = [
    (0, 1), (2, 7), (3, 11), (5, 6), (8, 9), (4, 10), (1, 11), (0, 6),
]


def _build_pair(n=N, seed=5):
    """Fresh (object, array) MSF pair sharing nothing but the seed."""
    co, ca = CostModel(), CostModel()
    mo = BatchIncrementalMSF(n, seed=seed, cost=co, engine="object")
    ma = BatchIncrementalMSF(n, seed=seed, cost=ca, engine="array")
    return mo, ma, co, ca


def _kruskal_edges(n, edges):
    """Oracle MSF edge ids via the static Kruskal kernel."""
    if not edges:
        return set()
    arr = EdgeArray.from_tuples(n, edges)
    return set(arr.eid[kruskal_msf(arr)].tolist())


class TestBatchMSFDifferential:
    @given(batches=_BATCHES)
    @settings(deadline=None)
    def test_engines_agree_on_everything(self, batches):
        mo, ma, co, ca = _build_pair()
        all_edges = []
        next_eid = 0
        for batch in batches:
            rows = []
            for u, v, w in batch:
                rows.append((u, v, w, next_eid))
                next_eid += 1
            all_edges.extend(r for r in rows if r[0] != r[1])

            with measure(co) as op_o:
                rep_o = mo.batch_insert(rows)
            with measure(ca) as op_a:
                rep_a = ma.batch_insert(rows)

            # Identical simulated cost for the *operation*, not just the
            # running totals (which could mask compensating drift).
            assert (op_o.work, op_o.span) == (op_a.work, op_a.span)

            # Identical insert reports (inserted / evicted / rejected).
            assert rep_o.inserted == rep_a.inserted
            assert rep_o.evicted == rep_a.evicted
            assert rep_o.rejected == rep_a.rejected

            # Identical MSF edge sets, matching the Kruskal oracle.
            msf_o = mo.msf_edges()
            assert msf_o == ma.msf_edges()
            assert {e[3] for e in msf_o} == _kruskal_edges(N, all_edges)

            # Point queries agree everywhere sampled.
            for u, v in _QUERY_PAIRS:
                assert mo.connected(u, v) == ma.connected(u, v)
                assert mo.heaviest_edge(u, v) == ma.heaviest_edge(u, v)
        assert (co.work, co.span) == (ca.work, ca.span)

    @given(batches=_BATCHES)
    @settings(deadline=None)
    def test_summary_queries_agree(self, batches):
        mo, ma, _, _ = _build_pair()
        assert mo.engine == "object"
        assert ma.engine == "array"
        for batch in batches:
            rows = [(u, v, w) for u, v, w in batch if u != v]
            mo.batch_insert(rows)
            ma.batch_insert(rows)
            assert mo.num_components == ma.num_components
            assert mo.num_msf_edges == ma.num_msf_edges
            assert mo.total_weight() == ma.total_weight()


class TestCPTDifferential:
    @given(
        batches=_BATCHES,
        marks=st.lists(_VERTS, min_size=1, max_size=6),
        seed=st.integers(0, 3),
    )
    @settings(deadline=None)
    def test_compressed_path_trees_identical(self, batches, marks, seed):
        fo = DynamicForest(N, seed=seed, engine="object")
        fa = DynamicForest(N, seed=seed, engine="array")
        # Union-find over accepted edges keeps every batch a forest batch
        # (links must be acyclic *after* in-batch links too).
        parent = list(range(N))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        next_eid = 0
        for batch in batches:
            links = []
            for u, v, w in batch:
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                parent[ru] = rv
                links.append((u, v, w, next_eid))
                next_eid += 1
            fo.batch_link(links)
            fa.batch_link(links)

            co, ca = CostModel(), CostModel()
            fo.cost = co
            fa.cost = ca
            cpt_o = fo.compressed_path_tree(marks)
            cpt_a = fa.compressed_path_tree(marks)
            # Same node set, same edge set (with annotations), same
            # aggregates, same marked set -- and the same charges.
            assert cpt_o.vertices == cpt_a.vertices
            assert cpt_o.edges == cpt_a.edges
            assert cpt_o.aggregates == cpt_a.aggregates
            assert cpt_o.marked == cpt_a.marked
            assert (co.work, co.span) == (ca.work, ca.span)


def _strip_wall(d):
    """Drop the ``wall_s`` measurement (real time is never deterministic;
    the *simulated* phase tree -- names, work, span, calls, items -- is)."""
    return {
        k: ([_strip_wall(c) for c in v] if k == "children" else v)
        for k, v in d.items()
        if k != "wall_s"
    }


class TestSeededDeterminism:
    """Same stream + same seed => byte-identical results, run to run."""

    @staticmethod
    def _stream(seed):
        rng = random.Random(seed)
        batches = []
        for _ in range(5):
            batches.append(
                [
                    (rng.randrange(24), rng.randrange(24), float(rng.randrange(9)))
                    for _ in range(rng.randrange(1, 14))
                ]
            )
        return batches

    @classmethod
    def _run(cls, engine, seed):
        cost = CostModel()
        m = BatchIncrementalMSF(24, seed=seed, cost=cost, engine=engine)
        for batch in cls._stream(seed):
            m.batch_insert([(u, v, w) for u, v, w in batch if u != v])
        msf_ids = bytes(
            json.dumps([e[3] for e in m.msf_edges()]), "utf-8"
        )
        phase_tree = bytes(
            json.dumps(_strip_wall(cost.phases.to_dict()), sort_keys=True), "utf-8"
        )
        return msf_ids, phase_tree

    def test_byte_identical_across_runs_and_engines(self):
        for seed in (0, 7, 2024):
            runs = {
                engine: [self._run(engine, seed) for _ in range(2)]
                for engine in ("object", "array")
            }
            # Two independent runs of the same engine: byte-identical MSF
            # edge ids and byte-identical phase trees.
            for engine, (r1, r2) in runs.items():
                assert r1[0] == r2[0], f"{engine} MSF ids differ across runs"
                assert r1[1] == r2[1], f"{engine} phase tree differs across runs"
            # And across engines: the array engine replays the object
            # engine's phases with the same names and the same charges.
            assert runs["object"][0] == runs["array"][0]
            assert runs["object"][1] == runs["array"][1]
