"""Tests for the sliding-window structures (Theorems 5.1-5.6) against
brute-force recomputation over the window."""

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sliding_window import (
    SWApproxMSFWeight,
    SWBipartiteness,
    SWConnectivity,
    SWConnectivityEager,
    SWCycleFree,
    SWKCertificate,
    WindowClock,
)

N = 18


def multigraph_edge_connectivity(n, edges):
    """Global edge connectivity of a multigraph (parallel edges count)."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u, v in edges:
        if u == v:
            continue
        if g.has_edge(u, v):
            g[u][v]["weight"] += 1
        else:
            g.add_edge(u, v, weight=1)
    if n <= 1:
        return float("inf")
    if nx.number_connected_components(g) > 1:
        return 0
    value, _ = nx.stoer_wagner(g)
    return value


def window_multigraph(stream, tw, n=N):
    g = nx.MultiGraph()
    g.add_nodes_from(range(n))
    for tau, e in enumerate(stream):
        if tau >= tw:
            g.add_edge(e[0], e[1])
    return g


class TestWindowClock:
    def test_assign_and_expire(self):
        c = WindowClock()
        assert list(c.assign(3)) == [0, 1, 2]
        assert c.window_size == 3
        c.expire(2)
        assert c.tw == 2 and c.window_size == 1

    def test_expire_clamps_at_t(self):
        c = WindowClock()
        c.assign(2)
        c.expire(10)
        assert c.tw == 2 and c.window_size == 0

    def test_expire_negative_raises(self):
        with pytest.raises(ValueError):
            WindowClock().expire(-1)

    def test_expire_until_monotone(self):
        c = WindowClock()
        c.assign(5)
        c.expire_until(3)
        c.expire_until(1)  # cannot move backwards
        assert c.tw == 3


class TestConnectivityOracle:
    @pytest.mark.parametrize("variant", ["lazy", "eager"])
    @pytest.mark.parametrize("seed", range(3))
    def test_random_stream(self, variant, seed):
        rng = random.Random(seed)
        cls = SWConnectivity if variant == "lazy" else SWConnectivityEager
        sw = cls(N, seed=seed)
        stream, tw = [], 0
        for step in range(35):
            batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(rng.randrange(1, 5))]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.5 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
            g = window_multigraph(stream, tw)
            for _ in range(8):
                a, b = rng.randrange(N), rng.randrange(N)
                assert sw.is_connected(a, b) == nx.has_path(g, a, b), (step, a, b)
            if variant == "eager":
                assert sw.num_components == nx.number_connected_components(g)
            assert sw.window_size == len(stream) - tw

    def test_expire_everything(self):
        sw = SWConnectivityEager(4)
        sw.batch_insert([(0, 1), (1, 2)])
        sw.batch_expire(10)
        assert sw.num_components == 4
        assert not sw.is_connected(0, 1)

    def test_expire_before_any_insert(self):
        sw = SWConnectivityEager(3)
        sw.batch_expire(5)
        assert sw.num_components == 3

    def test_self_connectivity(self):
        sw = SWConnectivity(3)
        assert sw.is_connected(1, 1)

    def test_explicit_taus_must_be_fresh(self):
        sw = SWConnectivityEager(4)
        sw.batch_insert([(0, 1)], taus=[5])
        with pytest.raises(ValueError):
            sw.batch_insert([(1, 2)], taus=[5])
        with pytest.raises(ValueError):
            sw.batch_insert([(1, 2), (2, 3)], taus=[9, 8])
        with pytest.raises(ValueError):
            sw.batch_insert([(1, 2)], taus=[7, 8])

    def test_forest_edges_listing(self):
        sw = SWConnectivityEager(4)
        sw.batch_insert([(0, 1), (1, 2), (0, 2)])
        fe = sw.forest_edges()
        assert len(fe) == 2
        assert all(tau in (0, 1, 2) for _, _, tau in fe)

    def test_lazy_expire_is_constant_work(self):
        from repro.runtime import CostModel

        cost = CostModel()
        sw = SWConnectivity(64, cost=cost)
        sw.batch_insert([(i, i + 1) for i in range(63)])
        snap = cost.snapshot()
        sw.batch_expire(30)
        assert cost.since(snap).work == 0  # pointer bump only


class TestBipartitenessOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_stream(self, seed):
        rng = random.Random(10 + seed)
        sw = SWBipartiteness(N, seed=seed)
        stream, tw = [], 0
        for step in range(30):
            batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(rng.randrange(1, 4))]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.4 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
            g = nx.Graph(window_multigraph(stream, tw))
            assert sw.is_bipartite() == nx.is_bipartite(g), step

    def test_odd_cycle_expires_away(self):
        sw = SWBipartiteness(3)
        sw.batch_insert([(0, 1), (1, 2), (0, 2)])  # triangle
        assert not sw.is_bipartite()
        sw.batch_expire(1)  # drop (0,1): a path remains
        assert sw.is_bipartite()


class TestCycleFreeOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_stream(self, seed):
        rng = random.Random(20 + seed)
        sw = SWCycleFree(N, seed=seed)
        stream, tw = [], 0
        for step in range(30):
            batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(rng.randrange(1, 4))]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.4 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
            g = window_multigraph(stream, tw)
            expect = (
                g.number_of_edges() > N - nx.number_connected_components(g)
            )
            assert sw.has_cycle() == expect, step

    def test_self_loop_is_cycle_until_expired(self):
        sw = SWCycleFree(3)
        sw.batch_insert([(0, 1), (2, 2)])
        assert sw.has_cycle()
        sw.batch_expire(2)
        assert not sw.has_cycle()

    def test_cycle_expires_away(self):
        sw = SWCycleFree(3)
        sw.batch_insert([(0, 1), (1, 2), (2, 0)])
        assert sw.has_cycle()
        sw.batch_expire(1)
        assert not sw.has_cycle()


class TestApproxMSF:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SWApproxMSFWeight(4, eps=0.0, max_weight=10)
        with pytest.raises(ValueError):
            SWApproxMSFWeight(4, eps=0.5, max_weight=0.5)
        sw = SWApproxMSFWeight(4, eps=0.5, max_weight=10)
        with pytest.raises(ValueError):
            sw.batch_insert([(0, 1, 1000.0)])

    def test_exact_on_unit_weights(self):
        sw = SWApproxMSFWeight(5, eps=0.5, max_weight=10)
        sw.batch_insert([(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        assert sw.weight() == pytest.approx(3.0)

    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    @pytest.mark.parametrize("seed", range(2))
    def test_within_eps_of_exact(self, eps, seed):
        rng = random.Random(30 + seed)
        sw = SWApproxMSFWeight(N, eps=eps, max_weight=64.0, seed=seed)
        stream, tw = [], 0
        for step in range(18):
            batch = [
                (rng.randrange(N), rng.randrange(N), rng.uniform(1, 64))
                for _ in range(rng.randrange(1, 4))
            ]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.3 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
            g = nx.Graph()
            g.add_nodes_from(range(N))
            for tau, (u, v, w) in enumerate(stream):
                if tau >= tw and (not g.has_edge(u, v) or g[u][v]["weight"] > w):
                    g.add_edge(u, v, weight=w)
            exact = sum(
                d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True)
            )
            est = sw.weight()
            assert exact - 1e-9 <= est <= (1 + eps) * exact + 1e-9, (step, exact, est)


class TestKCertificate:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SWKCertificate(4, k=0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(2))
    def test_cut_preservation_oracle(self, k, seed):
        rng = random.Random(40 + seed)
        sw = SWKCertificate(N, k=k, seed=seed)
        stream, tw = [], 0
        for step in range(20):
            batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(rng.randrange(1, 6))]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.3 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
            window_edges = [(u, v) for tau, (u, v) in enumerate(stream) if tau >= tw]
            cert_edges = sw.make_certificate()
            assert len(cert_edges) <= k * (N - 1)
            gec = multigraph_edge_connectivity(N, window_edges)
            cec = multigraph_edge_connectivity(N, [(u, v) for u, v, _ in cert_edges])
            assert min(gec, k) == min(cec, k), step
            assert sw.is_k_connected() == (gec >= k), step

    def test_certificate_taus_unexpired(self):
        sw = SWKCertificate(6, k=2)
        sw.batch_insert([(0, 1), (1, 2), (0, 2), (2, 3)])
        sw.batch_expire(2)
        assert all(tau >= 2 for _, _, tau in sw.make_certificate())

    def test_connectivity_lower_bound(self):
        sw = SWKCertificate(4, k=3)
        sw.batch_insert([(0, 1), (0, 1), (0, 1), (2, 3)])
        assert sw.connectivity_lower_bound(0, 1) == 3
        assert sw.connectivity_lower_bound(0, 2) == 0
        assert sw.connectivity_lower_bound(1, 1) == 3


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_window_connectivity(data):
    n = data.draw(st.integers(2, 10))
    sw = SWConnectivityEager(n, seed=data.draw(st.integers(0, 99)))
    stream: list[tuple[int, int]] = []
    tw = 0
    for _ in range(data.draw(st.integers(1, 5))):
        batch = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=6
            )
        )
        batch = [e for e in batch if e[0] != e[1]]
        stream += batch
        sw.batch_insert(batch)
        live = len(stream) - tw
        if live > 0:
            d = data.draw(st.integers(0, live))
            tw += d
            sw.batch_expire(d)
    g = window_multigraph(stream, tw, n=n)
    assert sw.num_components == nx.number_connected_components(g)
    for u in range(n):
        for v in range(n):
            assert sw.is_connected(u, v) == nx.has_path(g, u, v)
