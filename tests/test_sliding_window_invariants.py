"""Deeper structural invariants of the sliding-window layer.

These go beyond output oracles: the maximal spanning forest decomposition
of Section 5.4 has internal properties (edge-disjointness, recency
maximality of F_1, monotone tau structure) that the cascading insertion
must maintain, and composed structures must agree with standalone ones
when driven through the explicit-tau interface.
"""

import random

import networkx as nx
import pytest

from repro import BatchIncrementalMSF, CostModel, DynamicForest
from repro.sliding_window import (
    SWApproxMSFWeight,
    SWConnectivityEager,
    SWKCertificate,
)

N = 20


class TestTopLevelExports:
    def test_imports(self):
        import repro

        assert repro.BatchIncrementalMSF is BatchIncrementalMSF
        assert repro.DynamicForest is DynamicForest
        assert repro.CostModel is CostModel
        assert isinstance(repro.__version__, str)


class TestKCertificateDecomposition:
    def _drive(self, seed, k=3, rounds=25):
        rng = random.Random(seed)
        sw = SWKCertificate(N, k=k, seed=seed)
        stream, tw = [], 0
        for _ in range(rounds):
            batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(rng.randrange(1, 6))]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.3 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
        return sw, stream, tw

    @pytest.mark.parametrize("seed", range(3))
    def test_forests_are_edge_disjoint(self, seed):
        sw, _, _ = self._drive(seed)
        seen: set[int] = set()
        for d in sw._d:
            taus = {tau for tau, _ in d.items()}
            assert not (taus & seen), "an edge appears in two forests"
            seen |= taus

    @pytest.mark.parametrize("seed", range(3))
    def test_each_forest_is_a_forest(self, seed):
        sw, _, _ = self._drive(seed)
        for d in sw._d:
            g = nx.Graph()
            g.add_nodes_from(range(N))
            for tau, (u, v) in d.items():
                assert not g.has_edge(u, v)
                g.add_edge(u, v)
            assert nx.number_of_edges(g) == N - nx.number_connected_components(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_f1_spans_window_graph(self, seed):
        sw, stream, tw = self._drive(seed)
        g = nx.MultiGraph()
        g.add_nodes_from(range(N))
        g.add_edges_from(stream[tw:])
        f1 = nx.Graph()
        f1.add_nodes_from(range(N))
        f1.add_edges_from((u, v) for _, (u, v) in sw._d[0].items())
        assert nx.number_connected_components(f1) == nx.number_connected_components(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_certificate_taus_within_window(self, seed):
        sw, stream, tw = self._drive(seed)
        for u, v, tau in sw.make_certificate():
            assert tw <= tau < len(stream)
            assert {u, v} == set(stream[tau])


class TestExplicitTauComposition:
    def test_subsampled_instance_matches_filtered_standalone(self):
        # Drive one instance with explicit global taus over a subsample and
        # a standalone instance with the same edges arriving contiguously:
        # connectivity must agree at matched expiry points.
        rng = random.Random(4)
        stream = []
        for _ in range(60):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                stream.append((u, v))
        keep = [i for i in range(len(stream)) if i % 3 != 0]  # the subsample

        composed = SWConnectivityEager(N, seed=1)
        composed.batch_insert([stream[i] for i in keep], taus=keep)

        standalone = SWConnectivityEager(N, seed=1)
        standalone.batch_insert([stream[i] for i in keep])

        for u in range(N):
            for v in range(N):
                assert composed.is_connected(u, v) == standalone.is_connected(u, v)

        # Expire up to global tau 30 = the first 20 kept edges.
        composed.expire_until(30)
        standalone.batch_expire(sum(1 for i in keep if i < 30))
        assert composed.num_components == standalone.num_components

    def test_approx_msf_levels_share_clock(self):
        sw = SWApproxMSFWeight(N, eps=0.5, max_weight=16.0, seed=2)
        sw.batch_insert([(0, 1, 1.0), (1, 2, 16.0), (2, 3, 4.0)])
        sw.batch_expire(2)  # drops the first two arrivals at every level
        for level in sw._levels:
            # Each level clamps at its own last arrival, but everything
            # older than global tau = 2 must be gone.
            assert level.clock.tw >= min(2, level.clock.t)
            assert all(tau >= 2 for _, _, tau in level.forest_edges())
        # Only (2, 3, 4.0) remains: MSF weight estimate covers one edge.
        assert 4.0 <= sw.weight() <= 1.5 * 4.0 + 1e-9


class TestRecencyMSFInvariant:
    @pytest.mark.parametrize("seed", range(3))
    def test_window_forest_is_recency_msf(self, seed):
        # The eager structure's forest must equal the -tau MSF of the
        # window multigraph, edge for edge.
        rng = random.Random(seed)
        sw = SWConnectivityEager(N, seed=seed)
        stream, tw = [], 0
        for _ in range(30):
            batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(rng.randrange(1, 5))]
            batch = [e for e in batch if e[0] != e[1]]
            stream += batch
            sw.batch_insert(batch)
            if rng.random() < 0.4 and tw < len(stream):
                d = rng.randrange(1, len(stream) - tw + 1)
                tw += d
                sw.batch_expire(d)
        g = nx.Graph()
        g.add_nodes_from(range(N))
        for tau in range(tw, len(stream)):
            u, v = stream[tau]
            g.add_edge(u, v, weight=-tau)  # newest = lightest
        expect = {
            -int(d["weight"])
            for _, _, d in nx.minimum_spanning_edges(g, data=True)
        }
        got = {tau for _, _, tau in sw.forest_edges()}
        assert got == expect
