"""Unit tests for the streaming service layer: WAL, snapshots, batching,
backpressure, shedding, and the threaded apply loop.

Crash/recovery correctness is covered separately by
``tests/test_failure_injection.py`` (kill at every WAL offset) and
``tests/test_service_recovery.py`` (Hypothesis property, both engines).
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.graphgen.streams import EdgeBatch, bursty_stream
from repro.obs.metrics import get_metrics
from repro.service import (
    Backpressure,
    ServiceClosed,
    ServiceConfig,
    SnapshotStore,
    StreamService,
    WalCorruption,
    WriteAheadLog,
    read_wal,
    read_wal_dir,
)
from repro.service.wal import OP_EXPIRE, OP_INSERT, decode_record, encode_record
from repro.sliding_window import SWConnectivityEager


def make_sw(n=32, seed=9):
    return SWConnectivityEager(n, seed=seed)


class _Exploding:
    """A structure whose apply path always fails (not an injected crash)."""

    def batch_insert(self, edges):
        raise RuntimeError("boom")

    def batch_expire(self, delta):
        raise RuntimeError("boom")


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------


class TestWal:
    def test_encode_decode_roundtrip(self):
        ops = (
            (OP_INSERT, ((0, 1), (2, 3, 1.25))),
            (OP_EXPIRE, 7),
            (OP_INSERT, ((4, 5),)),
        )
        rec = decode_record(encode_record(3, ops))
        assert rec is not None
        assert rec.lsn == 3
        assert rec.ops == ops

    def test_append_and_reopen_resumes_lsn(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            assert wal.append([(OP_INSERT, ((0, 1),))]) == 0
            assert wal.append([(OP_EXPIRE, 2)]) == 1
        with WriteAheadLog(path) as wal:
            assert wal.next_lsn == 2
            assert wal.append([(OP_EXPIRE, 1)]) == 2
        records, _ = read_wal(path)
        assert [r.lsn for r in records] == [0, 1, 2]
        assert records[1].ops == ((OP_EXPIRE, 2),)

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append([(OP_INSERT, ((0, 1),))])
            wal.append([(OP_INSERT, ((1, 2),))])
        # Simulate a crash mid-append: chop the last line in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 12])
        records, good = read_wal(path)
        assert [r.lsn for r in records] == [0]
        with WriteAheadLog(path) as wal:  # open repairs the tail
            assert wal.next_lsn == 1
            assert path.stat().st_size == good
            wal.append([(OP_INSERT, ((1, 2),))])
        records, _ = read_wal(path)
        assert [r.lsn for r in records] == [0, 1]

    def test_tail_missing_newline_is_torn(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append([(OP_INSERT, ((0, 1),))])
            wal.append([(OP_INSERT, ((1, 2),))])
        # Crash that persisted the final record's bytes but not its
        # trailing newline: the bytes decode cleanly, yet the record must
        # count as torn, or the next append would extend the same line.
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        path.write_bytes(raw[:-1])
        records, good = read_wal(path)
        assert [r.lsn for r in records] == [0]
        with WriteAheadLog(path) as wal:  # open truncates back to record 0
            assert wal.next_lsn == 1
            assert path.stat().st_size == good
            wal.append([(OP_INSERT, ((2, 3),))])
        records, _ = read_wal(path)  # the re-append round-trips cleanly
        assert [r.lsn for r in records] == [0, 1]
        assert records[1].ops == ((OP_INSERT, ((2, 3),)),)

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append([(OP_INSERT, ((0, 1),))])
            wal.append([(OP_INSERT, ((1, 2),))])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-8] + 'garbage"'  # damage a non-tail record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruption):
            read_wal(path)

    def test_empty_or_missing_log(self, tmp_path):
        assert read_wal(tmp_path / "nope.jsonl") == ([], 0)
        with WriteAheadLog(tmp_path / "wal.jsonl") as wal:
            assert wal.next_lsn == 0
            assert wal.records() == []


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------


class TestSnapshotStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        sw = make_sw()
        sw.batch_insert([(0, 1), (1, 2)])
        store.save(sw, lsn=4)
        loaded = store.load_latest()
        assert loaded is not None
        lsn, restored = loaded
        assert lsn == 4
        assert restored.num_components == sw.num_components
        assert sorted(restored.forest_edges()) == sorted(sw.forest_edges())

    def test_prunes_to_retain(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=2)
        for lsn in (1, 3, 5, 7):
            store.save({"lsn": lsn}, lsn=lsn)
        assert store.lsns() == [5, 7]

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=3)
        store.save(["old"], lsn=1)
        store.save(["new"], lsn=2)
        (tmp_path / "snapshot-000000000002.pkl").write_bytes(b"not a pickle")
        lsn, obj = store.load_latest()
        assert (lsn, obj) == (1, ["old"])

    def test_no_snapshots(self, tmp_path):
        assert SnapshotStore(tmp_path / "none").load_latest() is None

    def test_wrong_schema_is_skipped(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("good", lsn=1)
        bad = {"schema": "something/else", "lsn": 9, "structure": "bad"}
        (tmp_path / "snapshot-000000000009.pkl").write_bytes(pickle.dumps(bad))
        assert store.load_latest() == (1, "good")


# ----------------------------------------------------------------------
# Micro-batching and the synchronous apply path
# ----------------------------------------------------------------------


class TestMicroBatching:
    def test_coalescing_preserves_op_order(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=10**9))
        svc.submit_insert([(0, 1)])
        svc.submit_insert([(1, 2)])  # merges with the previous insert op
        svc.submit_expire(1)
        svc.submit_expire(1)  # merges with the previous expire op
        svc.submit_insert([(2, 3)])
        assert [op[0] for op in svc._pending] == [OP_INSERT, OP_EXPIRE, OP_INSERT]
        assert svc.queue_depth == 3 + 1  # 3 edges + 1 expire op
        svc.flush()
        # Twin applying the same logical sequence directly.
        tw = make_sw()
        tw.batch_insert([(0, 1), (1, 2)])
        tw.batch_expire(2)
        tw.batch_insert([(2, 3)])
        assert svc.structure.num_components == tw.num_components
        assert sorted(svc.structure.forest_edges()) == sorted(tw.forest_edges())

    def test_size_trigger_flushes_inline(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=4))
        svc.submit_insert([(0, 1), (1, 2)])
        assert svc.rounds_applied == 0
        svc.submit_insert([(2, 3), (3, 4)])  # trips the size trigger
        assert svc.rounds_applied == 1
        assert svc.queue_depth == 0

    def test_flush_returns_lsn_or_minus_one(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=10**9))
        assert svc.flush() == -1
        svc.submit_insert([(0, 1)])
        assert svc.flush() == 0
        assert svc.flush() == -1
        assert svc.next_lsn == 1

    def test_submit_edgebatch(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=10**9))
        svc.submit(EdgeBatch(((0, 1), (1, 2)), expire=1))
        svc.drain()
        assert svc.structure.window_size == 1

    def test_sync_overflow_drains_inline(self):
        svc = StreamService(
            make_sw(), config=ServiceConfig(flush_edges=10**9, max_pending=4)
        )
        for i in range(10):
            svc.submit_insert([(i % 8, (i + 1) % 8)])
        svc.drain()
        assert svc.structure.clock.t == 10  # nothing lost

    def test_oversized_batch_is_admitted_alone(self):
        svc = StreamService(
            make_sw(), config=ServiceConfig(flush_edges=10**9, max_pending=4)
        )
        svc.submit_insert([(i, i + 1) for i in range(8)])  # > max_pending
        svc.drain()
        assert svc.structure.clock.t == 8

    def test_expire_validates_and_skips_zero(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=10**9))
        with pytest.raises(ValueError):
            svc.submit_expire(-1)
        svc.submit_expire(0)
        assert svc.queue_depth == 0

    def test_memory_only_service_is_not_durable(self):
        svc = StreamService(make_sw())
        assert not svc.durable
        svc.submit_insert([(0, 1)])
        svc.drain()
        assert svc.next_lsn == 1

    def test_submit_insert_validates_arity(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=10**9))
        with pytest.raises(ValueError, match="edge row 1"):
            svc.submit_insert([(0, 1), (1, 2, 3, 4)])
        with pytest.raises(ValueError, match="edge row 0"):
            svc.submit_insert([(7,)])
        assert svc.queue_depth == 0  # nothing from a bad batch is enqueued

    def test_unexpected_apply_error_kills_service(self, tmp_path):
        svc = StreamService(
            _Exploding(), data_dir=tmp_path, config=ServiceConfig(flush_edges=10**9)
        )
        svc.submit_insert([(0, 1)])
        with pytest.raises(RuntimeError, match="boom"):
            svc.flush()
        assert isinstance(svc.error, RuntimeError)
        with pytest.raises(ServiceClosed, match="boom"):  # no more traffic
            svc.submit_insert([(1, 2)])
        # The round hit the WAL before the apply blew up, so recovery
        # against a healthy structure replays it.
        recovered = StreamService.open(tmp_path, make_sw)
        assert recovered.recovered_rounds == 1
        recovered.close()

    def test_closed_service_rejects_traffic(self):
        svc = StreamService(make_sw())
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit_insert([(0, 1)])
        with pytest.raises(ServiceClosed):
            svc.flush()
        svc.close()  # idempotent

    def test_existing_wal_requires_open(self, tmp_path):
        with StreamService(make_sw(), data_dir=tmp_path) as svc:
            svc.submit_insert([(0, 1)])
        with pytest.raises(ValueError, match="StreamService.open"):
            StreamService(make_sw(), data_dir=tmp_path)
        svc = StreamService.open(tmp_path, make_sw)
        assert svc.recovered_rounds == 1
        svc.close()

    def test_open_fresh_directory(self, tmp_path):
        svc = StreamService.open(tmp_path / "new", make_sw)
        assert svc.recovered_rounds == 0
        svc.submit_insert([(0, 1)])
        svc.close()

    def test_flush_phase_and_metrics_recorded(self):
        sw = make_sw()
        svc = StreamService(sw, config=ServiceConfig(flush_edges=10**9))
        before = get_metrics().counter("service.rounds").value
        svc.submit_insert([(0, 1), (1, 2)])
        svc.flush()
        assert get_metrics().counter("service.rounds").value == before + 1
        assert len(svc.flush_wall) == 1
        flush = sw.cost.phases.children["service-flush"]
        assert flush.items == 2
        assert "window-insert" in flush.children  # structure phases nest under it


# ----------------------------------------------------------------------
# Backpressure and shedding
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_threaded_full_buffer_raises(self):
        svc = StreamService(
            make_sw(), config=ServiceConfig(flush_edges=4, max_pending=8)
        )
        svc.start()
        try:
            with svc.paused():  # the apply thread cannot drain while paused
                svc.submit_insert([(i, i + 1) for i in range(6)])
                with pytest.raises(Backpressure):
                    svc.submit_insert([(i, i + 1) for i in range(6)])
            svc.drain()
            assert svc.structure.clock.t == 6  # rejected batch was not applied
        finally:
            svc.close()

    def test_shedding_drops_expirations_not_insertions(self):
        svc = StreamService(
            make_sw(),
            config=ServiceConfig(
                flush_edges=10**9, max_pending=10, shed_expirations=True
            ),
        )
        before = get_metrics().counter("service.expirations_shed").value
        svc.submit_insert([(i, i + 1) for i in range(4)])
        svc.submit_expire(2)
        svc.submit_insert([(i, i + 2) for i in range(6)])  # overflows: sheds
        svc.drain()
        shed = get_metrics().counter("service.expirations_shed").value - before
        assert shed == 2
        assert svc.structure.clock.t == 10  # every insertion survived
        assert svc.structure.clock.tw == 0  # the expiration did not

    def test_incoming_expire_is_shed_when_full(self):
        svc = StreamService(
            make_sw(),
            config=ServiceConfig(
                flush_edges=10**9, max_pending=4, shed_expirations=True
            ),
        )
        svc.start()
        try:
            before = get_metrics().counter("service.expirations_shed").value
            with svc.paused():
                svc.submit_insert([(i, i + 1) for i in range(4)])
                svc.submit_expire(3)  # buffer full: shed on arrival
            svc.drain()
            shed = get_metrics().counter("service.expirations_shed").value - before
            assert shed == 3
            assert svc.structure.clock.tw == 0
        finally:
            svc.close()


# ----------------------------------------------------------------------
# The background apply thread
# ----------------------------------------------------------------------


class TestThreadedLoop:
    def test_deadline_flush(self):
        svc = StreamService(
            make_sw(), config=ServiceConfig(flush_edges=10**9, flush_interval=0.01)
        )
        svc.start()
        try:
            svc.submit_insert([(0, 1)])
            # Wait on rounds_applied, not queue_depth: the queue empties
            # at _take_pending, a few ms before the round finishes.
            deadline = time.monotonic() + 5.0
            while svc.rounds_applied < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert svc.queue_depth == 0
            assert svc.rounds_applied >= 1
        finally:
            svc.close()

    def test_stop_flushes_remaining(self):
        svc = StreamService(
            make_sw(), config=ServiceConfig(flush_edges=10**9, flush_interval=5.0)
        )
        svc.start()
        svc.submit_insert([(0, 1), (1, 2)])
        svc.stop()  # must not wait the full 5s interval, and must drain
        assert svc.queue_depth == 0
        assert svc.structure.clock.t == 2
        svc.close()

    def test_loop_death_surfaces_cause_to_producers(self):
        svc = StreamService(
            _Exploding(), config=ServiceConfig(flush_edges=10**9, flush_interval=0.01)
        )
        svc.start()
        svc.submit_insert([(0, 1)])
        deadline = time.monotonic() + 5.0
        while svc.error is None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert isinstance(svc.error, RuntimeError)  # loop died, cause kept
        with pytest.raises(ServiceClosed, match="boom"):
            svc.submit_insert([(1, 2)])
        svc.close()  # joins the dead thread cleanly

    def test_start_is_idempotent(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_interval=0.01))
        assert svc.start() is svc
        t = svc._thread
        svc.start()
        assert svc._thread is t  # no second apply loop
        svc.close()

    def test_concurrent_producers_lose_nothing(self, tmp_path):
        import random
        from repro.runtime.scheduler import ThreadPoolScheduler

        rng = random.Random(4)
        stream = bursty_stream(
            32, rounds=20, base_batch=5, burst_batch=20, window=64, rng=rng
        )
        total_edges = sum(len(b.edges) for b in stream)
        total_expire = sum(b.expire for b in stream)
        svc = StreamService(
            make_sw(),
            data_dir=tmp_path,
            config=ServiceConfig(flush_edges=16, flush_interval=0.005),
        )
        svc.start()
        with ThreadPoolScheduler(max_workers=4) as pool:
            futures = [
                pool.submit(
                    lambda part: [svc.submit(b) for b in part], stream[i::4]
                )
                for i in range(4)
            ]
            for f in futures:
                f.result()
        svc.close()
        assert svc.structure.clock.t == total_edges
        assert svc.structure.clock.tw == total_expire
        # Every accepted round is durable.
        records = read_wal_dir(tmp_path / "wal")[0]
        logged = sum(
            len(p) for r in records for k, p in r.ops if k == OP_INSERT
        )
        assert logged == total_edges

    def test_query_serializes_against_apply(self):
        svc = StreamService(make_sw(), config=ServiceConfig(flush_edges=10**9))
        svc.submit_insert([(0, 1)])
        svc.drain()
        assert svc.query(lambda s: s.is_connected(0, 1)) is True
        with svc.paused() as s:
            assert s.num_components == 31
