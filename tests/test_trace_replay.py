"""The determinism contract of trace replay, property-tested.

The claims, each pinned here:

- **Round trip**: a workload recorded from a live replicated pipeline
  (writes with expirations, grouped batch reads with consistency
  tokens) replays into byte-identical final MSF state *and* identical
  ``(work, span)`` cost charges -- on both RC-tree engines, and across
  replay speeds (virtual time is data, not a scheduler).
- **Chaos composition, both directions**: a trace recorded *under* a
  chaos tape (primary kills, follower churn) replays clean against the
  fault-free oracle -- crashed rounds were never durable, retried
  rounds record once -- and a clean trace replayed *while* a chaos tape
  fires still converges to the trace oracle.
- **Adaptive control reproducibility**: a tuning run's knob decisions,
  trace-recorded by :class:`AdaptiveController`, replay
  decision-for-decision through :class:`ScriptedController`.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.schedule import ChaosSchedule
from repro.graphgen import bursty_stream
from repro.replication import ReplicatedService
from repro.service.query import QueryService
from repro.service.service import ServiceConfig
from repro.sliding_window import SWConnectivityEager
from repro.trace import (
    AdaptiveController,
    ControlConfig,
    ReplayConfig,
    ScriptedController,
    TraceRecorder,
    TraceReplayer,
    VirtualClock,
    read_trace,
    state_fingerprint,
    trace_oracle,
)
from repro.trace.replay import factory_from_meta

N = 16
SEED = 11


def factory(engine=None):
    return SWConnectivityEager(N, seed=SEED, engine=engine)


def trace_meta():
    return {"factory": {"structure": "SWConnectivityEager", "n": N, "seed": SEED}}


def record_workload(tmp_path, rounds, name="w"):
    """Drive a live replicated pipeline through ``rounds`` with capture on.

    ``rounds`` is a list of ``(edges, expire, queries)``; expirations are
    clamped to the live window size so every round commits.  Returns the
    trace path, the recording run's final fingerprint, and its
    ``(work, span)`` cost charges.
    """
    trace_path = tmp_path / f"{name}.trace.jsonl"
    rec = TraceRecorder(trace_path, meta=trace_meta())
    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=0, recorder=rec)
    svc = ReplicatedService(factory, tmp_path / f"{name}-rec", config=cfg)
    qs = QueryService(svc, recorder=rec)
    window = 0
    for edges, expire, queries in rounds:
        expire = min(expire, window)
        if not edges and not expire:
            continue
        lsn = svc.write(edges, expire)
        window += len(edges) - expire
        if queries:
            qs.run(queries, at_least=lsn)
    fp = state_fingerprint(svc.primary.structure)
    cost = svc.primary.structure.cost
    charges = (cost.work, cost.span)
    svc.close()
    rec.close()
    return trace_path, fp, charges


# ----------------------------------------------------------------------
# Hypothesis round trip: state and cost charges survive record -> replay
# ----------------------------------------------------------------------


def edges_strategy():
    # SWConnectivityEager takes (u, v) pairs: "weights" are recency
    # timestamps the structure assigns itself (that assignment being
    # deterministic is part of what the round trip proves).
    pair = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
        lambda t: t[0] != t[1]
    )
    return st.lists(pair, min_size=0, max_size=6)


def queries_strategy():
    pair_q = st.tuples(
        st.sampled_from(["connected", "path_max"]),
        st.integers(0, N - 1),
        st.integers(0, N - 1),
    )
    scalar_q = st.sampled_from([("components",), ("window_size",)])
    return st.lists(st.one_of(pair_q, scalar_q), min_size=0, max_size=5)


def rounds_strategy():
    one_round = st.tuples(
        edges_strategy(), st.integers(0, 3), queries_strategy()
    )
    return st.lists(one_round, min_size=1, max_size=5)


# Hypothesis reuses one tmp_path across examples (and resets the random
# module's state per example, so random names would collide and the
# trace writer would *resume* a prior example's file): a process-global
# counter is the only safe uniquifier here.
_example_ids = itertools.count()


class TestRoundTripProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(rounds=rounds_strategy())
    def test_record_replay_state_and_charges(self, tmp_path, rounds):
        trace_path, fp, charges = record_workload(
            tmp_path, rounds, name=f"w{next(_example_ids)}"
        )
        meta, events = read_trace(trace_path)
        if not any(e.kind == "write" for e in events):
            return  # every generated round was empty; nothing to claim

        oracle, _ = trace_oracle(factory_from_meta(meta), events)
        assert state_fingerprint(oracle) == fp

        fps = {}
        for engine in ("array", "object"):
            result = TraceReplayer(
                (meta, events),
                factory=factory_from_meta(meta, engine=engine),
                config=ReplayConfig(engine=engine),
                data_dir=tmp_path / f"rp-{engine}-{trace_path.stem}",
            )
            res = result.run()
            assert res.deterministic is True, engine
            fps[engine] = res.fingerprint
        assert fps["array"] == fp
        assert fps["object"] == fp  # rc.snapshot() is engine-independent


# ----------------------------------------------------------------------
# Deterministic replay: engines, speeds, charges
# ----------------------------------------------------------------------


def sample_rounds(rounds=10, seed=SEED):
    rng = random.Random(seed)
    out = []
    for i, batch in enumerate(
        bursty_stream(
            N, rounds=rounds, base_batch=3, burst_batch=8, window=20, rng=rng
        )
    ):
        queries = []
        if i % 2 == 0:
            queries = [
                ("connected", rng.randrange(N), rng.randrange(N))
                for _ in range(4)
            ] + [("components",), ("window_size",)]
        out.append((list(batch.edges), batch.expire, queries))
    return out


class TestDeterministicReplay:
    def test_replay_charges_match_recording(self, tmp_path):
        trace_path, fp, charges = record_workload(tmp_path, sample_rounds())
        replayer = TraceReplayer(
            trace_path,
            config=ReplayConfig(),
            data_dir=tmp_path / "rp",
        )
        res = replayer.run()
        assert res.fingerprint == fp
        assert res.deterministic is True
        # Replay the ops+reads once more on a bare pipeline to read the
        # cost charges off the served structure.
        meta, events = read_trace(trace_path)
        svc = ReplicatedService(
            factory_from_meta(meta),
            tmp_path / "charges",
            config=ServiceConfig(flush_edges=10**9, snapshot_every=0),
        )
        qs = QueryService(svc)
        from repro.trace.record import ops_from_json

        for ev in events:
            if ev.kind == "write":
                svc.write_ops(ops_from_json(ev.body["ops"]))
            elif ev.kind == "read":
                qs.run(
                    [tuple(q) for q in ev.body["queries"]],
                    at_least=ev.body.get("at_least"),
                )
        cost = svc.primary.structure.cost
        assert (cost.work, cost.span) == charges
        assert state_fingerprint(svc.primary.structure) == fp
        svc.close()

    @pytest.mark.parametrize("speed", [0.5, 1.0, 8.0])
    def test_speed_never_changes_state(self, tmp_path, speed):
        trace_path, fp, _ = record_workload(tmp_path, sample_rounds())
        res = TraceReplayer(
            trace_path,
            config=ReplayConfig(speed=speed, followers=1),
            data_dir=tmp_path / f"rp-{speed}",
        ).run()
        assert res.fingerprint == fp
        assert res.deterministic is True

    def test_rebatching_mode_preserves_logical_state(self, tmp_path):
        """``preserve_rounds=False`` re-batches under the target flush
        policy: round boundaries change, but the replay must stay
        byte-identical to its *own* WAL oracle and logically identical
        (window content, connectivity) to the trace oracle."""
        trace_path, fp, _ = record_workload(tmp_path, sample_rounds())
        meta, events = read_trace(trace_path)
        res = TraceReplayer(
            (meta, events),
            config=ReplayConfig(
                preserve_rounds=False,
                service=ServiceConfig(flush_edges=8, snapshot_every=0),
            ),
            data_dir=tmp_path / "rp-rebatch",
        ).run()
        assert res.deterministic is True  # vs its own WAL chain
        oracle, _ = trace_oracle(factory_from_meta(meta), events)
        want = dict(x for x in state_fingerprint(oracle) if isinstance(x, tuple))
        got = dict(x for x in res.fingerprint if isinstance(x, tuple))
        assert got["window_size"] == want["window_size"]
        assert got["num_components"] == want["num_components"]

    def test_jittered_arrivals_stay_deterministic(self, tmp_path):
        trace_path, fp, _ = record_workload(tmp_path, sample_rounds())
        results = [
            TraceReplayer(
                trace_path,
                config=ReplayConfig(seed=99, jitter_us=4000),
                data_dir=tmp_path / f"rp-jit-{i}",
            ).run()
            for i in range(2)
        ]
        assert results[0].fingerprint == results[1].fingerprint == fp

    def test_virtual_clock_is_monotone_and_scaled(self):
        clock = VirtualClock(speed=2.0)
        assert clock.advance_to(10_000) == 5_000
        assert clock.advance_to(4_000) == 5_000  # never goes backwards
        assert clock.now() == 0.005
        with pytest.raises(ValueError):
            VirtualClock(speed=0)


# ----------------------------------------------------------------------
# Chaos composition
# ----------------------------------------------------------------------


class TestChaosComposition:
    def test_trace_recorded_under_chaos_replays_clean(self, tmp_path):
        """Primary kills during recording must not corrupt the trace:
        the crashed round was never durable (and never recorded), the
        retried round records once on the new primary -- so the trace
        replays byte-identical against the fault-free oracle."""
        from repro.chaos.schedule import ChaosDriver

        rec = TraceRecorder(tmp_path / "c.trace.jsonl", meta=trace_meta())
        cfg = ServiceConfig(
            flush_edges=10**9, snapshot_every=0, recorder=rec
        )
        svc = ReplicatedService(
            factory, tmp_path / "chaos-rec", config=cfg, followers=2
        )
        schedule = ChaosSchedule.generate(
            seed=7, events=8, steps=12, primary_kills=2
        )
        driver = ChaosDriver(svc, schedule)
        rng = random.Random(3)
        stream = bursty_stream(
            N, rounds=12, base_batch=3, burst_batch=8, window=20, rng=rng
        )
        for step, batch in enumerate(stream):
            driver.step(step, batch.edges, batch.expire)
        driver.finish()
        assert driver.stats["promotions"] >= 1  # chaos actually bit
        fp = state_fingerprint(svc.primary.structure)
        svc.close()
        rec.close()

        meta, events = read_trace(rec.path)
        lsns = [e.body["lsn"] for e in events if e.kind == "write"]
        assert lsns == sorted(set(lsns))  # each round recorded exactly once
        oracle, _ = trace_oracle(factory_from_meta(meta), events)
        assert state_fingerprint(oracle) == fp
        res = TraceReplayer(
            (meta, events),
            config=ReplayConfig(),
            data_dir=tmp_path / "chaos-rp",
        ).run()
        assert res.fingerprint == fp
        assert res.deterministic is True

    def test_replay_under_chaos_converges_to_oracle(self, tmp_path):
        """The other direction: a clean trace replayed while a chaos
        tape fires (kills, promotions) still ends at the trace oracle's
        state -- failover retries preserve every recorded round."""
        trace_path, fp, _ = record_workload(tmp_path, sample_rounds(rounds=12))
        meta, events = read_trace(trace_path)
        writes = sum(1 for e in events if e.kind == "write")
        schedule = ChaosSchedule.generate(
            seed=5, events=6, steps=writes, primary_kills=1
        )
        res = TraceReplayer(
            (meta, events),
            config=ReplayConfig(followers=2),
            data_dir=tmp_path / "rp-chaos",
            chaos=schedule,
        ).run()
        assert res.stats["promotions"] >= 1
        assert res.fingerprint == fp
        assert res.deterministic is True

    def test_chaos_requires_preserved_rounds(self, tmp_path):
        trace_path, _, _ = record_workload(tmp_path, sample_rounds(rounds=3))
        with pytest.raises(ValueError):
            TraceReplayer(
                trace_path,
                config=ReplayConfig(preserve_rounds=False),
                data_dir=tmp_path / "rp",
                chaos=ChaosSchedule.generate(seed=1, events=2, steps=3),
            )


# ----------------------------------------------------------------------
# Adaptive control: tuned live, replayed scripted
# ----------------------------------------------------------------------


class TestAdaptiveControl:
    def test_controller_decisions_are_recorded_and_scriptable(self, tmp_path):
        trace_path, fp, _ = record_workload(tmp_path, sample_rounds(rounds=16))
        meta, events = read_trace(trace_path)

        side = TraceRecorder(tmp_path / "tuning.trace.jsonl")
        live = AdaptiveController(
            ControlConfig(
                window=3,
                target_p99_ms=1e-6,  # always over: flush deadline shrinks
                target_lag_p99=0.5,  # any lag: budget grows
                min_budget=1,
            ),
            flush_interval=0.05,
            budget=1,
            recorder=side,
        )
        res_live = TraceReplayer(
            (meta, events),
            config=ReplayConfig(followers=1, replication_budget=1),
            data_dir=tmp_path / "rp-live",
            controller=live,
        ).run()
        side.close()
        assert res_live.fingerprint == fp
        assert live.decisions  # the loop actually tuned something
        knobs = {d.knob for d in live.decisions}
        assert "flush_interval" in knobs

        _, tuning_events = read_trace(side.path)
        assert [e.kind for e in tuning_events] == ["control"] * len(
            live.decisions
        )
        scripted = ScriptedController(
            tuning_events, flush_interval=0.05, budget=1
        )
        res_scripted = TraceReplayer(
            (meta, events),
            config=ReplayConfig(followers=1, replication_budget=1),
            data_dir=tmp_path / "rp-scripted",
            controller=scripted,
        ).run()
        assert res_scripted.fingerprint == fp
        assert scripted.decisions == live.decisions
        assert scripted.flush_interval == live.flush_interval
        assert scripted.budget == live.budget

    def test_budget_shrinks_when_lag_is_zero(self):
        c = AdaptiveController(
            ControlConfig(window=2, target_p99_ms=1e9, min_budget=4),
            budget=64,
        )
        for seq in range(2):
            c.observe_round(0.01)
            c.observe_lag(0.0)
            c.on_event(seq)
        assert c.budget == 32
        assert c.decisions[-1].knob == "budget"

    def test_flush_interval_grows_when_comfortable(self):
        c = AdaptiveController(
            ControlConfig(window=2, target_p99_ms=100.0),
            flush_interval=0.01,
        )
        for seq in range(2):
            c.observe_round(0.5)  # far under target
            c.on_event(seq)
        assert c.flush_interval == pytest.approx(0.0125)

    def test_no_decision_before_window_fills(self):
        c = AdaptiveController(ControlConfig(window=8, target_p99_ms=1e-9))
        c.observe_round(100.0)
        assert c.on_event(0) == []
        assert c.decisions == []
