"""Unit and property tests for the parallel sequence primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.primitives import (
    dedup_ints,
    group_by_key,
    pack,
    pfilter,
    pmap,
    prefix_sums,
    preduce,
    semisort_pairs,
)
from repro.primitives.sequences import pflatten
from repro.runtime import CostModel


class TestMapReduce:
    def test_pmap_applies(self):
        assert pmap(lambda x: 2 * x, [1, 2, 3]) == [2, 4, 6]

    def test_pmap_charges_linear_work(self):
        cm = CostModel()
        pmap(lambda x: x, list(range(64)), cost=cm)
        assert cm.work == 64
        assert cm.span == 1

    def test_preduce_sums(self):
        assert preduce(lambda a, b: a + b, range(10), 0) == 45

    def test_preduce_charges_log_span(self):
        cm = CostModel()
        preduce(lambda a, b: a + b, range(1024), 0, cost=cm)
        assert cm.work == 1024
        assert cm.span == 10

    def test_preduce_empty_returns_identity(self):
        assert preduce(lambda a, b: a + b, [], 17) == 17


class TestScanPack:
    def test_prefix_sums_exclusive(self):
        out = prefix_sums([3, 1, 4, 1, 5])
        assert out.tolist() == [0, 3, 4, 8, 9, 14]

    def test_prefix_sums_empty(self):
        assert prefix_sums([]).tolist() == [0]

    def test_pack_keeps_flagged(self):
        assert pack([True, False, True], ["a", "b", "c"]) == ["a", "c"]

    def test_pack_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pack([True], ["a", "b"])

    def test_pfilter(self):
        assert pfilter(lambda x: x % 2 == 0, list(range(8))) == [0, 2, 4, 6]

    def test_pflatten(self):
        assert pflatten([[1, 2], [], [3]]) == [1, 2, 3]

    @given(st.lists(st.integers(-100, 100), max_size=200))
    def test_prefix_sums_match_python(self, xs):
        out = prefix_sums(xs)
        acc, expect = 0, [0]
        for x in xs:
            acc += x
            expect.append(acc)
        assert out.tolist() == expect


class TestSemisort:
    def test_group_by_key_counts(self):
        uniq, counts = group_by_key([5, 3, 5, 5, 3, 9])
        assert uniq.tolist() == [3, 5, 9]
        assert counts.tolist() == [2, 3, 1]

    def test_semisort_pairs_groups(self):
        groups = semisort_pairs([1, 2, 1], [10, 20, 30])
        assert groups == {1: [10, 30], 2: [20]}

    def test_semisort_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            semisort_pairs([1], [1, 2])

    def test_dedup_ints(self):
        assert dedup_ints([4, 4, 2, 7, 2]).tolist() == [2, 4, 7]

    def test_dedup_charges_expected_linear_work(self):
        cm = CostModel()
        dedup_ints(np.arange(256), cost=cm)
        assert cm.work == 256
        assert cm.span == 8

    @given(st.lists(st.integers(0, 50), max_size=300))
    def test_group_counts_sum_to_n(self, xs):
        uniq, counts = group_by_key(xs)
        assert int(counts.sum()) == len(xs)
        assert sorted(set(xs)) == uniq.tolist()

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 1000)),
            max_size=200,
        )
    )
    def test_semisort_preserves_multiset(self, pairs):
        keys = [k for k, _ in pairs]
        vals = [v for _, v in pairs]
        groups = semisort_pairs(keys, vals)
        flat = sorted(v for vs in groups.values() for v in vs)
        assert flat == sorted(vals)
        # Within a group, arrival order is preserved (stable grouping).
        for k, vs in groups.items():
            assert vs == [v for kk, v in pairs if kk == k]
