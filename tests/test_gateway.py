"""Gateway tier: wire protocol, HTTP endpoints, worker routing, loadgen.

The acceptance test of the serving tier is the *differential contract*:
a read answered through the HTTP front door -- by an in-process replica
or by an out-of-process worker -- must be byte-for-byte identical to the
same batch answered directly by
:class:`~repro.service.query.QueryService` under the same LSN token.
Everything crossing a process boundary goes through
:mod:`repro.gateway.protocol`'s canonical encoder, and these tests hold
that property against the raw response bytes, not a reparsed value.

The error-path tests pin the operational contract from docs/gateway.md:
a malformed body is a structured 400 (never a stack trace), overload is
429 with ``retry_after`` in both header and body, and an unsatisfiable
consistency token is 503.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import subprocess
import sys
import time

import pytest

from repro.gateway import Gateway, GatewayConfig
from repro.gateway.protocol import (
    BadRequest,
    PAIR_KINDS,
    QUERY_KINDS,
    SCALAR_KINDS,
    dumps,
    error_body,
    jsonable,
    parse_consistency,
    parse_edges,
    parse_queries,
)
from repro.gateway.workers import WorkerPool, WorkerUnavailable, parse_addr
from repro.loadgen import LoadConfig, _Zipfish, run_load
from repro.replication import ReplicatedService
from repro.replication.worker import STRUCTURES, build_factory
from repro.service import ServiceConfig
from repro.service.query import QueryService
from repro.service.resilience import ServiceOverloaded

N = 32
SEED = 13


# -- protocol units -----------------------------------------------------


def test_jsonable_canonical_forms():
    assert jsonable((1, 2, (3, 4))) == [1, 2, [3, 4]]
    assert jsonable({3, 1, 2}) == [1, 2, 3]
    assert jsonable(frozenset({(2, 3), (1, 2)})) == [[1, 2], [2, 3]]
    assert jsonable({1: "a"}) == {"1": "a"}
    np = pytest.importorskip("numpy")
    assert jsonable(np.bool_(True)) is True
    assert jsonable(np.int64(7)) == 7
    out = jsonable(np.float64(1.5))
    assert out == 1.5 and isinstance(out, float)


def test_jsonable_rejects_unknown_types():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        jsonable(Opaque())


def test_dumps_is_canonical_bytes():
    assert dumps({"b": 1, "a": (2, 3)}) == b'{"a":[2,3],"b":1}'
    # Two structurally equal values must render to equal bytes.
    assert dumps({"x": {2, 1}}) == dumps({"x": [1, 2]})


def test_error_body_shapes():
    assert error_body("bad_request", "nope") == {
        "error": {"type": "bad_request", "message": "nope"}
    }
    body = error_body("overloaded", "busy", retry_after=0.25)
    assert body["error"]["retry_after"] == 0.25


def test_parse_queries_valid_and_invalid():
    got = parse_queries([["connected", 1, 2], ["components"]])
    assert got == [("connected", 1, 2), ("components",)]
    assert PAIR_KINDS and SCALAR_KINDS and QUERY_KINDS >= PAIR_KINDS
    for bad in (
        None,
        [],
        [[]],
        [["frobnicate"]],
        [["connected", 1]],
        [["connected", 1, "x"]],
        [["components", 1]],
        [["connected", True, 2]],
    ):
        with pytest.raises(BadRequest):
            parse_queries(bad)


def test_parse_edges_valid_and_invalid():
    assert parse_edges([[1, 2], [3, 4, 2.5]]) == [(1, 2), (3, 4, 2.5)]
    for bad in (None, [[1]], [[1, 2, 3, 4]], [[1, "x"]], [[1, 2, True]]):
        with pytest.raises(BadRequest):
            parse_edges(bad)


def test_parse_consistency():
    assert parse_consistency({}) == (None, None)
    assert parse_consistency({"at_least": 3, "max_staleness": 0}) == (3, 0)
    for bad in (
        {"at_least": -1},
        {"at_least": "3"},
        {"max_staleness": -2},
        {"at_least": True},
    ):
        with pytest.raises(BadRequest):
            parse_consistency(bad)


def test_parse_addr():
    assert parse_addr("127.0.0.1:9000") == ("127.0.0.1", 9000)
    with pytest.raises(ValueError):
        parse_addr("no-port")


# -- HTTP endpoint fixtures ---------------------------------------------


def make_service(tmp_path, followers=1, **cfg_kwargs):
    cfg = ServiceConfig(fsync=False, snapshot_every=0, **cfg_kwargs)
    factory = build_factory("SWConnectivityEager", N, SEED)
    return ReplicatedService(factory, tmp_path / "data", cfg, followers=followers)


@pytest.fixture
def gateway(tmp_path):
    with make_service(tmp_path) as rs:
        gw = Gateway(rs, GatewayConfig(port=0)).start()
        try:
            yield gw
        finally:
            gw.close()


class _Client:
    """Minimal keep-alive HTTP client returning (status, headers, bytes)."""

    def __init__(self, gw: Gateway) -> None:
        host, port = gw.address
        self.conn = http.client.HTTPConnection(host, port, timeout=10)

    def request(self, method: str, path: str, body: bytes | None = None):
        headers = {"Content-Type": "application/json"} if body else {}
        self.conn.request(method, path, body=body, headers=headers)
        resp = self.conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()

    def post(self, path: str, payload: dict):
        status, _, raw = self.request("POST", path, json.dumps(payload).encode())
        return status, json.loads(raw)

    def get(self, path: str):
        status, _, raw = self.request("GET", path)
        return status, json.loads(raw)

    def close(self) -> None:
        self.conn.close()


@pytest.fixture
def client(gateway):
    c = _Client(gateway)
    yield c
    c.close()


# -- write / read / health / metrics ------------------------------------


def test_write_returns_lsn_token_and_epoch(client, gateway):
    status, body = client.post("/v1/write", {"edges": [[0, 1], [1, 2]]})
    assert status == 200
    assert set(body) == {"lsn", "epoch"}
    first = body["lsn"]
    assert isinstance(first, int) and isinstance(body["epoch"], int)
    status, body = client.post(
        "/v1/write", {"edges": [[2, 3]], "expire": 1}
    )
    # Tokens are totally ordered: one round later, one token later.
    assert status == 200 and body["lsn"] == first + 1


def test_read_your_writes_through_gateway(client):
    _, w = client.post("/v1/write", {"edges": [[0, 1], [1, 2], [4, 5]]})
    status, body = client.post(
        "/v1/read",
        {
            "queries": [["connected", 0, 2], ["connected", 0, 5], ["components"]],
            "at_least": w["lsn"],
        },
    )
    assert status == 200
    assert body["answers"] == [True, False, N - 3]
    assert body["lsn"] >= w["lsn"] + 1
    assert body["stale"] is False


def test_health_and_metrics(client):
    status, health = client.get("/v1/health")
    assert status == 200
    assert health["status"] == "ok"
    assert health["primary"]["alive"] is True
    assert health["followers"] == 1
    assert health["workers"] == []
    status, metrics = client.get("/v1/metrics")
    assert status == 200
    assert metrics["counters"]["gateway.requests"] >= 2


# -- the differential contract ------------------------------------------

DIFFERENTIAL_QUERIES = [
    ["connected", 0, 2],
    ["path_max", 0, 5],
    ["connected", 7, 8],
    ["components"],
    ["window_size"],
]


def answers_bytes_from_response(raw: bytes) -> bytes:
    """The exact bytes of the ``answers`` value in a read response.

    Canonical encoding sorts keys, so the body is
    ``{"answers":<value>,"lsn":...`` -- the slice between those markers
    is the value's verbatim wire form.
    """
    prefix = b'{"answers":'
    assert raw.startswith(prefix), raw
    return raw[len(prefix) : raw.index(b',"lsn":')]


def test_gateway_read_matches_query_service_byte_for_byte(gateway, client):
    _, w = client.post(
        "/v1/write",
        {"edges": [[0, 1], [1, 2], [2, 5], [7, 8], [8, 9], [3, 4]]},
    )
    _, w2 = client.post("/v1/write", {"edges": [[5, 6]], "expire": 2})
    token = w2["lsn"]

    status, _, raw = client.request(
        "POST",
        "/v1/read",
        json.dumps(
            {"queries": DIFFERENTIAL_QUERIES, "at_least": token}
        ).encode(),
    )
    assert status == 200

    qs = QueryService(gateway.service, on_lag="catch_up")
    direct = qs.run(
        [tuple(q) for q in DIFFERENTIAL_QUERIES], at_least=token
    )
    assert answers_bytes_from_response(raw) == dumps(direct.answers)


# -- error paths: structured, never a stack trace -----------------------


def test_malformed_json_body_is_structured_400(client):
    for path in ("/v1/read", "/v1/write"):
        status, _, raw = client.request("POST", path, b"{not json!")
        assert status == 400
        assert b"Traceback" not in raw
        body = json.loads(raw)
        assert body["error"]["type"] == "bad_request"
        assert "JSON" in body["error"]["message"]


def test_non_object_body_is_structured_400(client):
    status, _, raw = client.request("POST", "/v1/read", b'[1, 2]')
    assert status == 400
    assert json.loads(raw)["error"]["type"] == "bad_request"


def test_unknown_query_kind_is_400(client):
    status, body = client.post("/v1/read", {"queries": [["frobnicate"]]})
    assert status == 400
    assert body["error"]["type"] == "bad_request"
    assert "frobnicate" in body["error"]["message"]


def test_unsupported_query_is_400(client):
    # SWConnectivityEager cannot answer 'certificate'; the kind is valid
    # on the wire but not for this structure.
    status, body = client.post("/v1/read", {"queries": [["certificate"]]})
    assert status == 400
    assert body["error"]["type"] == "unsupported_query"


def test_routing_404_and_405(client):
    status, body = client.get("/nope")
    assert status == 404 and body["error"]["type"] == "not_found"
    status, _, raw = client.request("GET", "/v1/read")
    assert status == 405
    assert json.loads(raw)["error"]["type"] == "method_not_allowed"


def test_overload_is_429_with_retry_after(gateway, client, monkeypatch):
    def overloaded(*a, **k):
        raise ServiceOverloaded("8 batches already in flight", retry_after=0.25)

    monkeypatch.setattr(gateway.query, "run", overloaded)
    status, headers, raw = client.request(
        "POST", "/v1/read", json.dumps({"queries": [["components"]]}).encode()
    )
    assert status == 429
    body = json.loads(raw)
    assert body["error"]["type"] == "overloaded"
    assert body["error"]["retry_after"] == 0.25
    assert headers.get("Retry-After") == "0.250"


def test_future_token_served_by_primary_under_catch_up(client):
    # The default lag policy (catch_up) answers a beyond-durable token
    # from the authoritative primary rather than failing the read.
    status, body = client.post(
        "/v1/read", {"queries": [["components"]], "at_least": 10_000}
    )
    assert status == 200
    assert body["replica"] == "primary"


def test_unsatisfiable_token_is_503_under_wait(tmp_path):
    # Under on_lag="wait" the same token times out into a structured
    # 503 staleness_exceeded with a retry hint.
    with make_service(tmp_path) as rs:
        rs.write([(0, 1)])
        qs = QueryService(rs, on_lag="wait", wait_timeout=0.2)
        gw = Gateway(rs, GatewayConfig(port=0), query_service=qs).start()
        client = _Client(gw)
        try:
            status, _, raw = client.request(
                "POST",
                "/v1/read",
                json.dumps(
                    {"queries": [["components"]], "at_least": 10_000}
                ).encode(),
            )
            assert status == 503
            assert b"Traceback" not in raw
            body = json.loads(raw)
            assert body["error"]["type"] == "staleness_exceeded"
            assert "retry_after" in body["error"]
        finally:
            client.close()
            gw.close()


def test_internal_errors_name_the_type_not_the_traceback(
    gateway, client, monkeypatch
):
    def boom(*a, **k):
        raise RuntimeError("wires crossed")

    monkeypatch.setattr(gateway.query, "run", boom)
    status, _, raw = client.request(
        "POST", "/v1/read", json.dumps({"queries": [["components"]]}).encode()
    )
    assert status == 500
    assert b"Traceback" not in raw
    body = json.loads(raw)
    assert body["error"]["type"] == "internal"
    assert "RuntimeError" in body["error"]["message"]


# -- the worker tier ----------------------------------------------------


def spawn_worker(data_dir, fid=0, **flags):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    args = [
        sys.executable, "-m", "repro.replication.worker",
        "--data-dir", str(data_dir),
        "--structure", "SWConnectivityEager",
        "--n", str(N), "--seed", str(SEED),
        "--port", "0", "--fid", str(fid),
        "--tail-interval", "0.01",
    ]
    for flag, value in flags.items():
        args += [f"--{flag.replace('_', '-')}", str(value)]
    proc = subprocess.Popen(
        args, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("REPRO-WORKER READY"), (line, proc.stderr.read())
    _, _, host, port, _ = line.split()
    return proc, f"{host}:{port}"


def test_worker_registry_covers_all_structures():
    assert {
        "SWConnectivity",
        "SWConnectivityEager",
        "SWBipartiteness",
        "SWApproxMSFWeight",
        "SWKCertificate",
        "SWCycleFree",
        "SWSparsifier",
    } <= set(STRUCTURES)


def test_worker_routing_differential_and_fallback(tmp_path):
    """One worker subprocess: routed reads are byte-identical to the
    direct QueryService under the same token, and killing the worker
    degrades to in-process serving instead of failing reads."""
    with make_service(tmp_path, followers=1) as rs:
        token = rs.write([(0, 1), (1, 2), (7, 8), (8, 9), (3, 4)])
        token = rs.write([(5, 6)], expire=1)
        proc, addr = spawn_worker(tmp_path / "data", fid=3)
        gw = Gateway(rs, GatewayConfig(port=0, workers=(addr,))).start()
        client = _Client(gw)
        try:
            body_bytes = json.dumps(
                {"queries": DIFFERENTIAL_QUERIES, "at_least": token}
            ).encode()
            status, _, raw = client.request("POST", "/v1/read", body_bytes)
            assert status == 200
            routed = json.loads(raw)
            assert routed["replica"] == "worker3"

            qs = QueryService(rs, on_lag="catch_up")
            direct = qs.run(
                [tuple(q) for q in DIFFERENTIAL_QUERIES], at_least=token
            )
            assert answers_bytes_from_response(raw) == dumps(direct.answers)

            health = client.get("/v1/health")[1]
            assert [w["alive"] for w in health["workers"]] == [True]

            # Kill the worker: reads fall back in-process, same answers.
            proc.terminate()
            proc.wait(timeout=10)
            status, _, raw2 = client.request("POST", "/v1/read", body_bytes)
            assert status == 200
            fallback = json.loads(raw2)
            assert not fallback["replica"].startswith("worker")
            assert answers_bytes_from_response(raw2) == dumps(direct.answers)
        finally:
            client.close()
            gw.close()
            if proc.poll() is None:
                proc.kill()


def test_worker_protocol_stale_bad_frame_and_stop(tmp_path):
    """Raw frame protocol: stale verdict for an undurable token, a
    structured reply (not a dropped socket) for a bad frame, and a clean
    acknowledged stop."""
    with make_service(tmp_path, followers=0) as rs:
        rs.write([(0, 1)])
        proc, addr = spawn_worker(tmp_path / "data", fid=1)
        host, port = parse_addr(addr)
        try:
            sock = socket.create_connection((host, port), timeout=10)
            rfile = sock.makefile("rb")

            def roundtrip(payload: bytes) -> dict:
                sock.sendall(payload + b"\n")
                return json.loads(rfile.readline())

            reply = roundtrip(
                dumps({"op": "read", "queries": [["connected", 0, 1]],
                       "required": 10_000})
            )
            assert reply["ok"] is False and reply["error"] == "stale"
            assert reply["fid"] == 1 and reply["lsn"] < 10_000
            # An unknown op is a structured verdict, connection kept.
            reply = roundtrip(dumps({"op": "launder"}))
            assert reply["ok"] is False and reply["error"] == "bad_frame"
            # An undecodable frame gets a structured reply, then the
            # worker drops the connection (framing is unrecoverable).
            reply = roundtrip(b"this is not json")
            assert reply["ok"] is False and reply["error"] == "bad_frame"
            assert rfile.readline() == b""
            sock.close()
            sock = socket.create_connection((host, port), timeout=10)
            rfile = sock.makefile("rb")
            reply = roundtrip(dumps({"op": "stop"}))
            assert reply == {"ok": True, "stopping": True}
            assert proc.wait(timeout=10) == 0
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()


def test_worker_pool_benches_dead_workers(tmp_path):
    pool = WorkerPool(["127.0.0.1:1"], retry_s=30.0)
    with pytest.raises(WorkerUnavailable):
        pool.read([["components"]], 0)
    # Benched: the second attempt reports the bench, not a fresh dial.
    with pytest.raises(WorkerUnavailable, match="benched"):
        pool.read([["components"]], 0)
    pool.close()


# -- load generator -----------------------------------------------------


def test_zipfish_is_seeded_and_bounded():
    import random

    s = _Zipfish(64, 1.1)
    draws = [s.draw(random.Random(7)) for _ in range(5)]
    assert draws == [s.draw(random.Random(7)) for _ in range(5)]
    assert all(0 <= d < 64 for d in draws)
    uniform = _Zipfish(64, 0.0)
    assert 0 <= uniform.draw(random.Random(7)) < 64


def test_loadgen_drives_gateway(gateway):
    host, port = gateway.address
    report = run_load(
        host,
        port,
        LoadConfig(
            duration_s=0.4,
            clients=200,
            think_s=1.0,
            read_fraction=0.8,
            read_batch=4,
            write_batch=2,
            n=N,
            pool=2,
            seed=7,
        ),
    )
    assert report.completed > 0
    assert report.reads > 0 and report.writes > 0
    assert report.errors == {}
    assert report.p99_ms >= report.p50_ms > 0
    d = report.as_dict()
    assert d["reads_per_s"] > 0 and d["offered"] >= d["completed"]
