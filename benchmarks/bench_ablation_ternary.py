"""ABL-ternary -- ablation: ternarization under high-degree workloads.

The paper handles arbitrary-degree trees by converting to bounded degree
"dynamically at no extra cost asymptotically" (Section 2.2).  This harness
compares per-edge update work on degree-extreme topologies (star: one
vertex of degree n-1; path: all degree <= 2; random recursive tree) and
checks the contraction's level structure stays O(lg n) with O(n) total
storage on all of them -- i.e. ternarization costs a constant factor only.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis import format_table
from repro.graphgen import path_edges, random_tree_edges, star_edges
from repro.runtime import CostModel, measure
from repro.trees import DynamicForest

N = 2048

SHAPES = {
    "path": lambda rng: path_edges(N, rng),
    "star": lambda rng: star_edges(N, rng),
    "random-tree": lambda rng: random_tree_edges(N, rng),
}


def test_ternarization_overhead(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        rows = []
        for name, gen in SHAPES.items():
            rng = random.Random(41)
            cost = CostModel()
            f = DynamicForest(N, seed=41, cost=cost)
            edges = [(u, v, w, i) for i, (u, v, w) in enumerate(gen(rng))]
            with measure(cost) as build:
                f.batch_link(edges)
            # Churn: cut and relink 64 random edges one at a time (the
            # worst granularity for a high-degree vertex).
            churn_edges = rng.sample(edges, 64)
            with measure(cost) as churn:
                for u, v, w, eid in churn_edges:
                    f.batch_cut([eid])
                    f.batch_link([(u, v, w, eid)])
            costs.append(cost)
            stats = f.rc.level_statistics()
            copies = f.ternary.num_copies
            rows.append(
                [
                    name,
                    build.work,
                    round(churn.work / (2 * 64), 1),
                    len(stats),
                    sum(stats),
                    copies,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "topology",
            "build work",
            "churn work/op",
            "levels",
            "leveled storage",
            "internal vertices",
        ],
        rows,
        title=f"Ablation: ternarization under degree extremes, n = {N}",
    )
    record_table("ablation_ternary", table)
    record_json(
        "ablation_ternary",
        costs,
        params={"n": N, "shapes": sorted(SHAPES), "churn_ops": 64},
    )

    by_name = {r[0]: r for r in rows}
    lg = math.log2(N)
    for name, row in by_name.items():
        assert row[3] <= 8 * lg, f"{name}: levels not O(lg n)"
        # Pure paths contract at the Miller-Reif chain rate (1/8 compress
        # probability per round), giving ~5 lg n levels and the largest
        # leveled-storage constant of any topology.
        assert row[4] <= 24 * N, f"{name}: leveled storage not O(n)"
        assert row[5] <= 3 * N, f"{name}: copies not O(n)"
    # Degree extremes stay within a constant factor of each other: the
    # ternarized star is no more expensive than the path worst case.
    assert by_name["star"][1] < 6 * by_name["path"][1]
    assert by_name["star"][2] < 6 * by_name["path"][2]


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_wallclock_build(benchmark, shape, engine):
    gen = SHAPES[shape]

    def build():
        rng = random.Random(7)
        f = DynamicForest(N, seed=7)
        f.batch_link([(u, v, w, i) for i, (u, v, w) in enumerate(gen(rng))])
        return f

    benchmark.pedantic(build, rounds=1, iterations=1)
