"""Shared benchmark helpers.

Each benchmark regenerates one artifact of the paper (a Table 1 row, a
figure, or a theorem's scaling claim).  Work/span come from the simulated
PRAM cost model (see DESIGN.md substitution 1); pytest-benchmark adds
wall-clock as a secondary signal.  Every harness writes its paper-style
table to ``bench_results/<name>.txt`` so EXPERIMENTS.md can cite it, and
prints it (visible with ``pytest -s``) -- and, via ``record_json``, a
structured ``bench_results/<name>.json`` record (parameters, per-phase
costs, wall times, git revision; schema in ``docs/observability.md``)
that ``python -m repro.report --trace`` renders.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs.export import record_from_costs, write_record
from repro.obs.metrics import get_metrics

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to bench_results/{name}.txt]")

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Write one structured benchmark record to ``bench_results/<name>.json``.

    ``costs`` is one :class:`~repro.runtime.cost.CostModel` or a sequence of
    them (one per sweep configuration); their phase trees are merged and
    their totals summed, so the record's top-level phase work sums exactly
    to the recorded total work.  ``params`` should carry the harness
    parameters (n, sweep values, seeds); ``extra`` any derived results
    worth keeping machine-readable (fit residuals, asserted properties).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name, costs, params=None, extra=None, wall_s=None):
        rec = record_from_costs(
            name,
            costs,
            params=params,
            wall_s=wall_s,
            metrics=get_metrics().as_dict(),
            extra=extra,
        )
        path = write_record(rec, RESULTS_DIR / f"{name}.json")
        print(f"[saved structured record to bench_results/{path.name}]")
        return rec

    return _record
