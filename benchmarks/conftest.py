"""Shared benchmark helpers.

Each benchmark regenerates one artifact of the paper (a Table 1 row, a
figure, or a theorem's scaling claim).  Work/span come from the simulated
PRAM cost model (see DESIGN.md substitution 1); pytest-benchmark adds
wall-clock as a secondary signal.  Every harness writes its paper-style
table to ``bench_results/<name>.txt`` so EXPERIMENTS.md can cite it, and
prints it (visible with ``pytest -s``) -- and, via ``record_json``, a
structured ``bench_results/<name>.json`` record (parameters, per-phase
costs, wall times, git revision; schema in ``docs/observability.md``)
that ``python -m repro.report --trace`` renders.

Engine A/B mode
---------------

Every driver takes the ``engine`` fixture, which pins the active RC-tree
engine for the test (argument *and* ``$REPRO_ENGINE``, so engine-agnostic
constructors follow too).  ``$REPRO_BENCH_ENGINE`` selects what runs:

- unset: one run on the session default (normally ``array``);
- ``object`` / ``array``: one run on that engine;
- ``ab`` / ``both``: each driver runs once per engine, back to back.

Artifacts from a non-default engine get an ``__<engine>`` name suffix so
A/B runs never clobber the canonical records; all records carry
``params["engine"]``, which ``repro.report --trace`` uses for
side-by-side comparison.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.obs.export import record_from_costs, write_record
from repro.obs.metrics import get_metrics
from repro.trees.engine import DEFAULT_ENGINE, ENV_VAR, resolve_engine

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


def _engine_params() -> list[str]:
    sel = os.environ.get("REPRO_BENCH_ENGINE", "").strip().lower()
    if sel in ("ab", "both"):
        return ["array", "object"]
    if sel:
        return [resolve_engine(sel)]
    return [resolve_engine(None)]


def pytest_generate_tests(metafunc):
    if "engine" in metafunc.fixturenames:
        metafunc.parametrize("engine", _engine_params(), indirect=True)


@pytest.fixture
def engine(request):
    """The RC-tree engine this benchmark run measures.

    Sets ``$REPRO_ENGINE`` for the duration of the test so every
    ``engine=None`` constructor in the driver resolves to the same engine
    the fixture reports, then restores the prior environment.
    """
    name = getattr(request, "param", None) or resolve_engine(None)
    prev = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = name
    try:
        yield name
    finally:
        if prev is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev


def _tagged_name(name: str) -> str:
    """Suffix artifact names with the active engine when it is not the
    default, so ``REPRO_BENCH_ENGINE=ab`` runs keep both result sets."""
    active = resolve_engine(None)
    return name if active == DEFAULT_ENGINE else f"{name}__{active}"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        name = _tagged_name(name)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to bench_results/{name}.txt]")

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Write one structured benchmark record to ``bench_results/<name>.json``.

    ``costs`` is one :class:`~repro.runtime.cost.CostModel` or a sequence of
    them (one per sweep configuration); their phase trees are merged and
    their totals summed, so the record's top-level phase work sums exactly
    to the recorded total work.  ``params`` should carry the harness
    parameters (n, sweep values, seeds); ``extra`` any derived results
    worth keeping machine-readable (fit residuals, asserted properties).
    The active engine is stamped into ``params["engine"]`` automatically.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name, costs, params=None, extra=None, wall_s=None):
        name = _tagged_name(name)
        params = dict(params or {})
        params.setdefault("engine", resolve_engine(None))
        rec = record_from_costs(
            name,
            costs,
            params=params,
            wall_s=wall_s,
            metrics=get_metrics().as_dict(),
            extra=extra,
        )
        path = write_record(rec, RESULTS_DIR / f"{name}.json")
        print(f"[saved structured record to bench_results/{path.name}]")
        return rec

    return _record
