"""Shared benchmark helpers.

Each benchmark regenerates one artifact of the paper (a Table 1 row, a
figure, or a theorem's scaling claim).  Work/span come from the simulated
PRAM cost model (see DESIGN.md substitution 1); pytest-benchmark adds
wall-clock as a secondary signal.  Every harness writes its paper-style
table to ``bench_results/<name>.txt`` so EXPERIMENTS.md can cite it, and
prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to bench_results/{name}.txt]")

    return _record
