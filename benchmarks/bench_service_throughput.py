"""Service layer throughput: rounds/sec and flush-latency tail.

Claims under test: the service's adaptive micro-batching preserves the
``O(l lg(1 + n/l))`` per-batch economics end to end -- larger committed
rounds mean less work per edge -- while the WAL + snapshot machinery adds
only constant per-round overhead.

Harness: drive a bursty sliding-window stream through a *durable*
:class:`~repro.service.StreamService` (WAL + periodic snapshots in a
scratch directory) over eager window connectivity, then report
throughput (rounds/sec, edges/sec) and the flush-latency distribution
(p50/p99), recorded as a versioned JSON record that
``python -m repro.report --trace`` renders.
"""

from __future__ import annotations

import pathlib
import random
import time

import numpy as np

from repro.analysis import format_table
from repro.graphgen import bursty_stream
from repro.runtime import CostModel
from repro.service import ServiceConfig, StreamService
from repro.sliding_window import SWConnectivityEager
from repro.trace import TraceRecorder

#: Every run leaves its committed rounds as a replayable trace artifact
#: (docs/tracing.md) -- feed it to ``scripts/gate.py --traces-dir`` or
#: ``repro.trace.replay_trace`` to re-drive this exact workload.
TRACE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results"
    / "service_throughput.trace.jsonl"
)

N = 2048
ROUNDS = 48
BASE_BATCH = 64
BURST_BATCH = 512
WINDOW = 2048
FLUSH_EDGES = 256
SNAPSHOT_EVERY = 16


def test_service_throughput(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}

    def run():
        cost = CostModel()
        sw = SWConnectivityEager(N, seed=13, cost=cost, engine=engine)
        data_dir = tmp_path / f"svc-{len(state)}"
        TRACE_PATH.parent.mkdir(exist_ok=True)
        TRACE_PATH.unlink(missing_ok=True)
        recorder = TraceRecorder(
            TRACE_PATH,
            meta={
                "factory": {
                    "structure": "SWConnectivityEager",
                    "n": N,
                    "seed": 13,
                },
                "generator": {
                    "kind": "bench_service_throughput",
                    "seed": 13,
                    "rounds": ROUNDS,
                },
            },
        )
        svc = StreamService(
            sw,
            data_dir=data_dir,
            config=ServiceConfig(
                flush_edges=FLUSH_EDGES,
                snapshot_every=SNAPSHOT_EVERY,
                recorder=recorder,
            ),
        )
        rng = random.Random(13)
        stream = bursty_stream(
            N,
            rounds=ROUNDS,
            base_batch=BASE_BATCH,
            burst_batch=BURST_BATCH,
            window=WINDOW,
            rng=rng,
        )
        edges = sum(len(b.edges) for b in stream)
        t0 = time.perf_counter()
        for b in stream:
            svc.submit(b)
        svc.drain()
        wall = time.perf_counter() - t0
        svc.close()
        recorder.close()
        state.clear()
        state.update(
            svc=svc,
            cost=cost,
            wall=wall,
            edges=edges,
            trace_events=recorder.events_recorded,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    svc, cost, wall, edges = state["svc"], state["cost"], state["wall"], state["edges"]

    lat_ms = np.asarray(svc.flush_wall) * 1e3
    p50, p99 = np.percentile(lat_ms, [50, 99])
    committed = svc.rounds_applied
    rounds_per_sec = committed / wall
    edges_per_sec = edges / wall
    mean_batch = edges / committed

    table = format_table(
        ["rounds", "edges", "rounds/s", "edges/s", "mean l", "p50 ms", "p99 ms"],
        [
            [
                committed,
                edges,
                f"{rounds_per_sec:.1f}",
                f"{edges_per_sec:.0f}",
                f"{mean_batch:.0f}",
                f"{p50:.2f}",
                f"{p99:.2f}",
            ]
        ],
        title=(
            f"Service throughput: durable StreamService over SW connectivity, "
            f"n = {N}, WAL + snapshots every {SNAPSHOT_EVERY} rounds"
        ),
    )
    record_table("service_throughput", table)
    record_json(
        "service_throughput",
        cost,
        params={
            "n": N,
            "rounds": ROUNDS,
            "base_batch": BASE_BATCH,
            "burst_batch": BURST_BATCH,
            "window": WINDOW,
            "flush_edges": FLUSH_EDGES,
            "snapshot_every": SNAPSHOT_EVERY,
            "seed": 13,
        },
        wall_s=wall,
        extra={
            "rounds_committed": committed,
            "rounds_per_sec": rounds_per_sec,
            "edges_per_sec": edges_per_sec,
            "mean_committed_batch": mean_batch,
            "p50_flush_ms": float(p50),
            "p99_flush_ms": float(p99),
            "trace": TRACE_PATH.name,
            "trace_events": state["trace_events"],
        },
    )
    assert committed <= ROUNDS  # coalescing can only merge rounds, not split
    assert p99 >= p50 > 0
    # Capture rides the commit path: one trace event per committed round.
    assert state["trace_events"] == committed
