"""ABL-batch -- ablation: why batching matters (the Section 1 story).

Insert the same m edges into an n-vertex MSF three ways:

1. one at a time (the sequential dynamic-trees baseline [47]);
2. in batches of l, sweeping l (Algorithm 2);
3. as one giant batch (where Theorem 1.1 approaches the optimal linear
   work of a from-scratch KKT build).

The total work should fall and the span collapse as l grows; the one-batch
run is compared against a from-scratch static KKT build as the lower
bound reference.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.core import BatchIncrementalMSF, SequentialIncrementalMSF
from repro.graphgen import gnm_edges
from repro.msf import EdgeArray, kkt_msf
from repro.runtime import CostModel

N = 1024
M = 2048


def _edges(seed: int):
    return gnm_edges(N, M, random.Random(seed))


def _run_batched(ell: int, seed: int) -> tuple[int, int, CostModel]:
    cost = CostModel()
    m = BatchIncrementalMSF(N, seed=seed, cost=cost)
    edges = _edges(seed)
    for i in range(0, len(edges), ell):
        m.batch_insert(edges[i : i + ell])
    return cost.work, cost.span, cost


def _run_sequential(seed: int) -> tuple[int, int]:
    cost = CostModel()
    s = SequentialIncrementalMSF(N, seed=seed, cost=cost)
    for u, v, w in _edges(seed):
        s.insert(u, v, w)
    return cost.work, cost.span


def test_batching_ablation(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        rows = []
        seq_w, seq_s = _run_sequential(29)
        rows.append(["1 (sequential [47])", seq_w, seq_s])
        for ell in (16, 128, 1024, M):
            w, s, cost = _run_batched(ell, 29)
            costs.append(cost)
            rows.append([f"{ell}", w, s])
        static_cost = CostModel()
        kkt_msf(EdgeArray.from_tuples(N, _edges(29)), cost=static_cost)
        rows.append(["static KKT (reference)", static_cost.work, static_cost.span])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["batch size l", "total work", "total span"],
        rows,
        title=f"Ablation: inserting m = {M} edges into n = {N} vertices",
    )
    record_table("ablation_batching", table)
    record_json(
        "ablation_batching",
        costs,
        params={"n": N, "m": M, "ells": [16, 128, 1024, M], "seed": 29},
    )

    seq_work, seq_span = rows[0][1], rows[0][2]
    one_batch_work, one_batch_span = rows[-2][1], rows[-2][2]
    static_work = rows[-1][1]
    assert one_batch_work < seq_work, "batching must reduce total work"
    assert one_batch_span < seq_span / 20, "batching must collapse the span"
    assert one_batch_work < 40 * static_work, (
        "one-batch insertion should be within a constant of a static build"
    )
    # Work decreases monotonically-ish along the sweep (allow 15% noise).
    works = [r[1] for r in rows[:-1]]
    for a, b in zip(works, works[1:]):
        assert b < a * 1.15


@pytest.mark.parametrize("ell", [1, 128, M])
def test_wallclock_insert_all(benchmark, ell, engine):
    def run():
        if ell == 1:
            s = SequentialIncrementalMSF(N, seed=31)
            for u, v, w in _edges(31):
                s.insert(u, v, w)
        else:
            m = BatchIncrementalMSF(N, seed=31)
            edges = _edges(31)
            for i in range(0, len(edges), ell):
                m.batch_insert(edges[i : i + ell])

    benchmark.pedantic(run, rounds=1, iterations=1)
