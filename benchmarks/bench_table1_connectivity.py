"""T1-conn -- Table 1 row "Connectivity".

Claims: incremental (union-find) O(l alpha(n)) work per batch; sliding
window O(l lg(1 + n/l)) work per batch; queries O(lg n) / O(alpha(n)).

Harness: drive both structures over the same random stream, measure cost
model work per batch across an l sweep, print the Table 1-style row with
per-edge work and bound ratios, and verify the incremental structure is
cheaper per edge (alpha(n) << lg(1 + n/l)) while both stay far below the
fully-dynamic n-dependent costs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import BOUND_MODELS, format_table
from repro.connectivity import IncrementalConnectivity
from repro.graphgen import sliding_window_stream
from repro.runtime import CostModel, measure
from repro.sliding_window import SWConnectivityEager

N = 2048
ELLS = [4, 16, 64, 256, 1024]


def _measure_sw(ell: int, seed: int) -> tuple[int, CostModel]:
    rng = random.Random(seed)
    cost = CostModel()
    sw = SWConnectivityEager(N, seed=seed, cost=cost)
    stream = sliding_window_stream(N, rounds=6, batch_size=ell, window=4 * ell, rng=rng)
    total = 0
    for b in stream:
        with measure(cost) as c:
            sw.batch_insert(list(b.edges))
            if b.expire:
                sw.batch_expire(b.expire)
        total += c.work
    return total // max(1, sum(len(b.edges) for b in stream)), cost


def _measure_inc(ell: int, seed: int) -> tuple[int, CostModel]:
    rng = random.Random(seed)
    cost = CostModel()
    inc = IncrementalConnectivity(N, seed=seed, cost=cost)
    stream = sliding_window_stream(N, rounds=6, batch_size=ell, window=10**9, rng=rng)
    total = 0
    for b in stream:
        with measure(cost) as c:
            inc.batch_insert(list(b.edges))
        total += c.work
    return total // max(1, sum(len(b.edges) for b in stream)), cost


def test_table1_row_connectivity(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for ell in ELLS:
            inc_w, inc_cost = _measure_inc(ell, seed=3)
            sw_w, sw_cost = _measure_sw(ell, seed=3)
            costs.extend([inc_cost, sw_cost])
            out.append((ell, inc_w, sw_w))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for ell, inc_w, sw_w in data:
        inc_bound = BOUND_MODELS["l*alpha(n)"](ell, N) / ell
        sw_bound = BOUND_MODELS["l*lg(1+n/l)"](ell, N) / ell
        rows.append(
            [ell, inc_w, f"{inc_w / inc_bound:.1f}", sw_w, f"{sw_w / sw_bound:.1f}"]
        )
    table = format_table(
        [
            "l",
            "incr work/edge",
            "/ alpha(n)",
            "window work/edge",
            "/ lg(1+n/l)",
        ],
        rows,
        title=f"Table 1 'Connectivity': per-edge work, n = {N}",
    )
    record_table("table1_connectivity", table)
    record_json(
        "table1_connectivity",
        costs,
        params={"n": N, "ells": ELLS, "rounds": 6, "seed": 3},
    )
    # Shape: incremental (alpha) is cheaper per edge than sliding window
    # (lg factor) at every batch size; both are n-independent per edge.
    for ell, inc_w, sw_w in data:
        assert inc_w < sw_w
        assert sw_w < N  # far below any Omega(n)-per-edge bound


def test_query_cost_logarithmic(record_table, benchmark, engine):
    rng = random.Random(9)
    cost = CostModel()
    sw = SWConnectivityEager(N, seed=9, cost=cost)
    sw.batch_insert([(rng.randrange(N), rng.randrange(N)) for _ in range(N)])

    def one_query():
        return sw.is_connected(rng.randrange(N), rng.randrange(N))

    benchmark(one_query)
    with measure(cost) as c:
        for _ in range(64):
            one_query()
    per_query = c.work / 64
    record_table(
        "table1_connectivity_query",
        f"isConnected work per query: {per_query:.1f} (lg n = 11): O(lg n) as claimed",
    )
    assert per_query < 12 * 11


@pytest.mark.parametrize("ell", [16, 256])
def test_wallclock_window_round(benchmark, ell, engine):
    rng = random.Random(4)
    sw = SWConnectivityEager(N, seed=4)
    sw.batch_insert([(rng.randrange(N), rng.randrange(N)) for _ in range(2 * ell)])

    def round_():
        batch = [(rng.randrange(N), rng.randrange(N)) for _ in range(ell)]
        sw.batch_insert([e for e in batch if e[0] != e[1]])
        sw.batch_expire(len(batch))

    benchmark.pedantic(round_, rounds=3, iterations=1)


def test_expire_work_scaling(record_table, benchmark, engine):
    """Theorem 5.2: BatchExpire(delta) costs O(delta lg(1 + n/delta) + lg n)
    expected work in the eager structure (and O(1) in the lazy one)."""

    def sweep():
        rows = []
        for delta in (4, 32, 256, 1024):
            rng = random.Random(delta)
            cost = CostModel()
            sw = SWConnectivityEager(N, seed=delta, cost=cost)
            # Fill a window larger than delta with random edges.
            batch = []
            while len(batch) < 2 * delta + 64:
                u, v = rng.randrange(N), rng.randrange(N)
                if u != v:
                    batch.append((u, v))
            sw.batch_insert(batch)
            with measure(cost) as c:
                sw.batch_expire(delta)
            bound = BOUND_MODELS["l*lg(1+n/l)"](delta, N)
            rows.append([delta, c.work, f"{c.work / bound:.2f}", c.span])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["delta", "expire work", "/ (d lg(1+n/d))", "span"],
        rows,
        title=f"Theorem 5.2: eager expiry cost, n = {N}",
    )
    record_table("table1_connectivity_expire", table)
    # Shape: bounded per-expired-edge work at every delta (the bound's
    # constant is regime-dependent -- scattered mass deletions touch every
    # contraction level, costing ~the O(n) leveled storage -- but never
    # super-constant per edge), and total work grows sublinearly in delta.
    for delta, work, _, _ in rows:
        assert work / delta < 60, (delta, work)
