"""ABL-msf -- ablation: the static MSF kernel on Line 4 of Algorithm 2.

The paper uses Cole-Klein-Tarjan (expected linear work) on the O(l)-size
graph ``CPT + E+``; our KKT realisation is compared against Kruskal
(O(l lg l)), Boruvka (O(l lg l)) and Prim on graphs of the shape the batch
inserter actually produces, plus end-to-end batch-insert timing under each
kernel.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.core import BatchIncrementalMSF
from repro.msf import (
    EdgeArray,
    boruvka_msf,
    filter_kruskal_msf,
    kkt_msf,
    kruskal_msf,
    prim_msf,
)
from repro.runtime import CostModel

KERNELS = {
    "kkt": kkt_msf,
    "kruskal": kruskal_msf,
    "filter-kruskal": filter_kruskal_msf,
    "boruvka": boruvka_msf,
    "prim": prim_msf,
}


def _local_graph(ell: int, seed: int) -> EdgeArray:
    """A graph shaped like CPT + E+: a sparse tree skeleton plus l extras."""
    rng = random.Random(seed)
    n = ell
    rows = [(rng.randrange(v), v, rng.random(), v) for v in range(1, n)]
    rows += [
        (rng.randrange(n), rng.randrange(n), rng.random(), n + j)
        for j in range(ell)
    ]
    rows = [r for r in rows if r[0] != r[1]]
    return EdgeArray.from_tuples(n, rows)


def test_kernel_work_comparison(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for ell in (64, 512, 4096):
            g = _local_graph(ell, seed=ell)
            row = [ell, g.m]
            expected = None
            for name, kernel in KERNELS.items():
                cost = CostModel()
                with cost.phase(name, items=g.m):
                    pos = kernel(g, cost=cost)
                costs.append(cost)
                if expected is None:
                    expected = sorted(pos.tolist())
                else:
                    assert sorted(pos.tolist()) == expected, name
                row.append(cost.work)
            out.append(row)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["l", "m", *KERNELS],
        data,
        title="Ablation: static MSF kernel work on CPT + E+ shaped graphs",
    )
    record_table("ablation_msf_kernel_work", table)
    record_json(
        "ablation_msf_kernel_work",
        costs,
        params={"ells": [64, 512, 4096], "kernels": sorted(KERNELS)},
    )
    # KKT's expected-linear work must grow slower than Kruskal's sort-bound.
    kkt_growth = data[-1][2] / data[0][2]
    kruskal_growth = data[-1][3] / data[0][3]
    assert kkt_growth < kruskal_growth


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_wallclock_kernel(benchmark, kernel, engine):
    g = _local_graph(2048, seed=5)
    fn = KERNELS[kernel]
    benchmark(lambda: fn(g))


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_wallclock_end_to_end_batch_insert(benchmark, kernel, engine):
    n = 1024
    rng = random.Random(11)
    m = BatchIncrementalMSF(n, seed=11, kernel=kernel)
    m.batch_insert([(rng.randrange(i + 1), i + 1, rng.random()) for i in range(n - 1)])

    def setup():
        batch = []
        for _ in range(256):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                batch.append((u, v, rng.random()))
        return (batch,), {}

    benchmark.pedantic(lambda b: m.batch_insert(b), setup=setup, rounds=3)
