"""F1 -- Figure 1: a weighted tree with marked vertices and its compressed
path tree.

Regenerates the worked example: builds the reconstruction of the figure's
tree (see tests/test_paper_examples.py for the layout), computes the CPT of
the marked set {A..E}, renders both, and asserts the published edge weights
{6, 10, 9, 7, 12, 3} with exactly two Steiner branch vertices.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.paperdata import (
    FIG1_EDGES,
    FIG1_EXPECTED_CPT,
    FIG1_MARKED,
    FIG1_N,
    FIG1_NAMES,
)
from repro.runtime import CostModel
from repro.trees import DynamicForest

NAMES = FIG1_NAMES
MARKED = FIG1_MARKED


def _build() -> DynamicForest:
    f = DynamicForest(FIG1_N, seed=2020, cost=CostModel())
    f.batch_link(FIG1_EDGES)
    return f


def _label(v: int) -> str:
    return NAMES.get(v, f"v{v}")


def test_regenerate_figure1(record_table, record_json, benchmark, engine):
    f = _build()
    cpt = benchmark.pedantic(
        lambda: f.compressed_path_tree(MARKED), rounds=3, iterations=1
    )
    got = {frozenset((a, b)): w for a, b, w, _ in cpt.edges}
    assert got == FIG1_EXPECTED_CPT

    tree_rows = [
        [_label(u), _label(v), w] for u, v, w, _ in FIG1_EDGES
    ]
    cpt_rows = [[_label(a), _label(b), w] for a, b, w, _ in sorted(cpt.edges)]
    out = (
        format_table(["u", "v", "w"], tree_rows, title="Figure 1a: input tree (marked: A-E)")
        + "\n\n"
        + format_table(
            ["u", "v", "heaviest w"],
            cpt_rows,
            title="Figure 1b: compressed path tree (matches the paper: weights 6,10,9,7,12,3)",
        )
    )
    record_table("fig1_cpt_example", out)
    record_json(
        "fig1_cpt_example",
        f.cost,
        params={"n": FIG1_N, "marked": sorted(MARKED)},
        extra={"cpt_edges": len(FIG1_EXPECTED_CPT)},
    )


def test_wallclock_pairwise_query(benchmark, engine):
    f = _build()
    assert f.path_max(0, 3) is not None
    benchmark(lambda: f.path_max(0, 3))
