"""Shard-group scaling: ingest and mixed reads at K = 1/2/4 groups.

Claim under test: partitioning the serving tier into K shard groups
(``repro.sharding``, docs/sharding.md) scales ingest **when the traffic
is partitionable** -- the ROADMAP's horizontal-scaling open item.  Each
configuration serves the same offered load: the same edge volume, the
same popularity law, the same window; what changes with K is
*locality*, drawn by the shared :class:`~repro.loadgen.PartitionSampler`
against the deployed router (exactly the ``--shards``/
``--partition-skew`` semantics of :mod:`repro.loadgen`).  Partitionable
traffic confines every component to one shard's key block, so each
shard maintains block-sized trees instead of one structure paying the
whole graph's -- the Gazit-style decomposition dividend, measurable
even serially on a single core.  Cross-shard traffic is the priced
contrast: at ``partition_skew=0.9`` cut edges keep components global --
the ingest dividend shrinks and reads pay the boundary contraction --
which is the honest operating envelope of the design, not a defect.

Commit rounds are **owner-affine**: the stream's pairs are grouped by
owner shard and drained round-robin, one shard's burst per round --
the affinity batching real sharded ingest paths apply (and a no-op at
K=1), so a round costs one WAL commit instead of K; window advances
ride every ``EXPIRE_EVERY``-th round.  Per (stream, K): ingest edges/s
over the whole stream through
:class:`~repro.sharding.sharded.ShardedService.write`, then mixed-read
batches/s (``connected``/``path_max`` pairs from the same sampler plus
``components``/``window_size``) through ``ShardedService.query`` --
fast-path shard-local sweeps plus boundary-coordinator composition.
The committed artifact asserts ingest edges/s grows monotonically
K = 1 -> 2 -> 4 on the partitionable stream and that K=4 clears
``INGEST_FLOOR`` x the K=1 rate.  ``python -m repro.report --trace
bench_results/shards.json`` renders the phase tree (``shard-route``,
``boundary-refresh``, per-shard service phases).

``REPRO_BENCH_SMOKE=1`` shrinks everything to a CI-sized smoke run
(tiny n, short stream, no scaling assertion).
"""

from __future__ import annotations

import collections
import os
import random
import time

from repro.analysis import format_table
from repro.loadgen import PartitionSampler
from repro.runtime import CostModel
from repro.service import ServiceConfig
from repro.sharding import ShardRouter, ShardedService, make_member_factory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

N = 96 if SMOKE else 2048
ROUNDS = 20 if SMOKE else 120
BATCH = 8 if SMOKE else 32
WINDOW = 64 if SMOKE else 2048
KS = [1, 2, 4]
STREAMS = [("partitionable", 1.0), ("cross10", 0.9)]
READ_BATCHES = 10 if SMOKE else 100
READ_BATCH = 16
PASSES = 1 if SMOKE else 5
SEED = 13
POP_SKEW = 1.1
SCHEME = "range"
EXPIRE_EVERY = 4  # window advances ride every 4th round, chunked
#: K=4 ingest floor over K=1 on the partitionable stream (single core,
#: serial fan-out -- the decomposition dividend alone).
INGEST_FLOOR = 1.15


def _stream(
    router: ShardRouter, skew_p: float
) -> tuple[list[list[tuple[int, int]]], list[list[tuple]]]:
    """One deployment's seeded workload: (ingest rounds, read batches).

    Locality is drawn against the *deployed* router: at K=1 there is
    nothing to be local to (the unsharded baseline serves the same
    volume unconstrained); at K>1 a pair stays inside one shard's key
    block with probability ``skew_p``.  Commit rounds are owner-affine
    (see the module docstring): the same pair multiset at every K,
    grouped by owner shard and drained round-robin into
    ``BATCH``-edge rounds -- the identity ordering at K=1.
    """
    sampler = PartitionSampler(
        N, POP_SKEW, router=router, partition_skew=skew_p
    )
    rng = random.Random(SEED)
    queues = [
        collections.deque() for _ in range(router.shards)
    ]
    for _ in range(ROUNDS * BATCH):
        u, v = sampler.draw_pair(rng)
        queues[router.owner(u, v)].append((u, v))
    rounds = []
    while any(queues):
        for q in queues:
            if q:
                rounds.append(
                    [q.popleft() for _ in range(min(BATCH, len(q)))]
                )
    reads = []
    for _ in range(READ_BATCHES):
        batch: list[tuple] = []
        for i in range(READ_BATCH):
            if i % 8 == 6:
                batch.append(("components",))
            elif i % 8 == 7:
                batch.append(("window_size",))
            else:
                kind = "connected" if i % 2 == 0 else "path_max"
                batch.append((kind, *sampler.draw_pair(rng)))
        reads.append(batch)
    return rounds, reads


def _run_config(
    k: int, skew_p: float, tmp_path, engine: str, cost: CostModel
) -> tuple[float, float]:
    """One pass: returns (ingest rounds/s, read batches/s) at K shards."""
    router = ShardRouter(N, k, scheme=SCHEME)
    rounds, reads = _stream(router, skew_p)
    svc = ShardedService(
        make_member_factory(N, seed=SEED, engine=engine),
        tmp_path,
        router,
        ServiceConfig(fsync=False, snapshot_every=0),
        cost=cost,
    )
    try:
        t0 = time.perf_counter()
        sent = 0
        for i, edges in enumerate(rounds):
            sent += len(edges)
            expire = (
                EXPIRE_EVERY * BATCH
                if i % EXPIRE_EVERY == EXPIRE_EVERY - 1 and sent > WINDOW
                else 0
            )
            svc.write(edges, expire=expire)
        ingest_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        for batch in reads:
            svc.query(batch)
        read_wall = time.perf_counter() - t0
    finally:
        svc.close()
    return sent / ingest_wall, len(reads) / read_wall


def test_shard_scaling(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}

    def run():
        cost = CostModel()
        # Pass-major interleaving + best-of: a host-noise burst slows
        # whichever single pass it lands on, never a whole config, and
        # the best pass is the least-interfered measurement (timeit's
        # min-rule applied to rates).
        passes: dict = {}
        for i in range(PASSES):
            for stream_name, skew_p in STREAMS:
                for k in KS:
                    passes.setdefault((stream_name, k), []).append(
                        _run_config(
                            k,
                            skew_p,
                            tmp_path / f"{stream_name}-k{k}-p{i}",
                            engine,
                            cost,
                        )
                    )
        rows = [
            (
                stream_name,
                k,
                max(p[0] for p in passes[(stream_name, k)]),
                max(p[1] for p in passes[(stream_name, k)]),
            )
            for stream_name, _ in STREAMS
            for k in KS
        ]
        state.clear()
        state.update(cost=cost, rows=rows)

    t0 = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    cost, rows = state["cost"], state["rows"]

    table = format_table(
        ["stream", "shards", "ingest edges/s", "read batches/s"],
        [
            [name, k, f"{ing:.0f}", f"{rd:.0f}"]
            for name, k, ing, rd in rows
        ],
        title=(
            f"Shard-group scaling (single process, {SCHEME} partitioning): "
            f"n = {N}, {ROUNDS} rounds x {BATCH} edges, window {WINDOW}, "
            f"best of {PASSES} pass(es)"
        ),
    )
    record_table("shards", table)
    record_json(
        "shards",
        cost,
        params={
            "n": N,
            "rounds": ROUNDS,
            "batch": BATCH,
            "window": WINDOW,
            "shards": KS,
            "streams": {name: p for name, p in STREAMS},
            "read_batches": READ_BATCHES,
            "read_batch": READ_BATCH,
            "passes": PASSES,
            "pop_skew": POP_SKEW,
            "scheme": SCHEME,
            "seed": SEED,
        },
        extra={
            "ingest_edges_per_sec": {
                f"{name}/k{k}": ing for name, k, ing, _ in rows
            },
            "read_batches_per_sec": {
                f"{name}/k{k}": rd for name, k, _, rd in rows
            },
        },
        wall_s=wall,
    )
    assert all(ing > 0 for _, _, ing, _ in rows)
    if not SMOKE:
        # The committed artifact's claim: on partitionable traffic,
        # ingest scales monotonically with the shard count and K=4
        # clears the near-linear floor over the unsharded baseline.
        part = {k: ing for s, k, ing, _ in rows if s == "partitionable"}
        for prev, nxt in zip(KS, KS[1:]):
            assert part[nxt] > part[prev], (
                f"ingest edges/s did not scale {prev} -> {nxt} shards: {part}"
            )
        assert part[max(KS)] >= INGEST_FLOOR * part[min(KS)], (
            f"K={max(KS)} ingest {part[max(KS)]:.0f}/s under "
            f"{INGEST_FLOOR}x the K=1 rate {part[min(KS)]:.0f}/s"
        )
