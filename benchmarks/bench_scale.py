"""SCALE -- one end-to-end run at the largest size the wall clock allows.

Not a paper artifact: a regression guard that the whole stack (ternary ->
contraction -> CPT -> Algorithm 2) stays usable at n = 16384 with mixed
batch sizes, and that per-edge work stays flat as the structure grows (the
amortized claim behind "work-efficient").
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core import BatchIncrementalMSF
from repro.runtime import CostModel, measure

N = 16384
TOTAL_EDGES = 3 * N


def test_end_to_end_scale(record_table, record_json, benchmark):
    costs: list[CostModel] = []

    def run():
        costs.clear()
        rng = random.Random(2024)
        cost = CostModel()
        costs.append(cost)
        m = BatchIncrementalMSF(N, seed=2024, cost=cost)
        phases = []
        inserted = 0
        batch_sizes = [64, 512, 4096]
        while inserted < TOTAL_EDGES:
            ell = batch_sizes[len(phases) % len(batch_sizes)]
            batch = []
            for _ in range(ell):
                u, v = rng.randrange(N), rng.randrange(N)
                if u != v:
                    batch.append((u, v, rng.random()))
            with measure(cost) as c:
                m.batch_insert(batch)
            inserted += len(batch)
            phases.append((ell, c.work / max(len(batch), 1)))
        return m, phases

    m, phases = benchmark.pedantic(run, rounds=1, iterations=1)
    assert m.num_msf_edges <= N - 1
    assert m.num_components >= 1

    # Per-edge work rises from the cheap empty-forest warmup to a steady
    # state and must then stay flat (no degradation as the forest fills).
    by_ell: dict[int, list[float]] = {}
    for ell, per_edge in phases:
        by_ell.setdefault(ell, []).append(per_edge)
    rows = []
    for ell, samples in sorted(by_ell.items()):
        steady = samples[len(samples) // 3 :]  # past the warmup
        mid = sorted(steady)[len(steady) // 2]
        rows.append(
            [ell, f"{samples[0]:.1f}", f"{mid:.1f}", f"{steady[-1]:.1f}", len(samples)]
        )
        assert steady[-1] < 2.0 * mid + 25, (
            f"per-edge work at l={ell} degraded past its steady state"
        )
    record_table(
        "scale_end_to_end",
        format_table(
            ["batch size", "warmup", "steady median", "final", "phases"],
            rows,
            title=f"Scale run: {TOTAL_EDGES} edges into n = {N} "
            f"({m.num_msf_edges} MSF edges, {m.num_components} components)",
        ),
    )
    record_json(
        "scale_end_to_end",
        costs,
        params={"n": N, "total_edges": TOTAL_EDGES, "batch_sizes": [64, 512, 4096]},
        extra={"msf_edges": m.num_msf_edges, "components": m.num_components},
    )
