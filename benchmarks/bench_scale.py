"""SCALE -- end-to-end engine A/B at the largest size the wall clock allows.

Two jobs in one harness:

1. *Regression guard*: the whole stack (ternary -> contraction -> CPT ->
   Algorithm 2) stays usable at n = 16384 with mixed batch sizes, and
   per-edge work stays flat as the structure grows (the amortized claim
   behind "work-efficient").
2. *Engine comparison*: the object-engine reference and the NumPy array
   engine consume the *identical* edge stream at every size; the harness
   asserts their simulated (work, span) match exactly and records the
   honest wall-clock/CPU speedup in ``bench_results/scale_end_to_end.json``.
   Rounds are interleaved (engine A, engine B, engine A, ...) and the
   best CPU time per engine is kept, which is the only measurement that
   survives noisy shared-host scheduling.
"""

from __future__ import annotations

import gc
import random
import time

from repro.analysis import format_table
from repro.core import BatchIncrementalMSF
from repro.runtime import CostModel, measure

SIZES = [4096, 16384]  # n; each run inserts 3n edges
BATCH_SIZES = [64, 512, 4096]
ROUNDS = 2  # interleaved timing rounds per (size, engine)


def _run_stream(n: int, engine: str):
    """Insert 3n random edges in mixed-size batches; return the final
    structure, its cost model, per-batch per-edge work, and timings."""
    rng = random.Random(2024)
    cost = CostModel()
    m = BatchIncrementalMSF(n, seed=2024, cost=cost, engine=engine)
    phases = []
    inserted = 0
    total = 3 * n
    t0 = time.perf_counter()
    c0 = time.process_time()
    while inserted < total:
        ell = BATCH_SIZES[len(phases) % len(BATCH_SIZES)]
        batch = []
        for _ in range(ell):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                batch.append((u, v, rng.random()))
        with measure(cost) as c:
            m.batch_insert(batch)
        inserted += len(batch)
        phases.append((ell, c.work / max(len(batch), 1)))
    wall = time.perf_counter() - t0
    cpu = time.process_time() - c0
    return m, cost, phases, wall, cpu


def test_end_to_end_scale(record_table, record_json, benchmark):
    results: dict[tuple[int, str], dict] = {}

    def run_all():
        results.clear()
        for _ in range(ROUNDS):
            for n in SIZES:
                for eng in ("array", "object"):
                    gc.collect()
                    m, cost, phases, wall, cpu = _run_stream(n, eng)
                    rec = {
                        "wall_s": wall,
                        "cpu_s": cpu,
                        "work": cost.work,
                        "span": cost.span,
                        "msf_edges": m.num_msf_edges,
                        "components": m.num_components,
                        "phases": phases,
                        "cost": cost,
                    }
                    del m
                    best = results.get((n, eng))
                    if best is None or cpu < best["cpu_s"]:
                        results[(n, eng)] = rec
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    ab: dict[str, dict] = {}
    for n in SIZES:
        obj, arr = results[(n, "object")], results[(n, "array")]
        # The tentpole contract: both engines simulate the *same machine*.
        assert (obj["work"], obj["span"]) == (arr["work"], arr["span"])
        assert obj["msf_edges"] == arr["msf_edges"]
        assert obj["components"] == arr["components"]
        speedup_cpu = obj["cpu_s"] / arr["cpu_s"]
        speedup_wall = obj["wall_s"] / arr["wall_s"]
        ab[str(n)] = {
            "object": {k: obj[k] for k in ("wall_s", "cpu_s", "work", "span")},
            "array": {k: arr[k] for k in ("wall_s", "cpu_s", "work", "span")},
            "speedup_cpu": speedup_cpu,
            "speedup_wall": speedup_wall,
        }
        rows.append(
            [
                n,
                3 * n,
                f"{obj['cpu_s']:.2f}",
                f"{arr['cpu_s']:.2f}",
                f"{speedup_cpu:.2f}x",
                obj["work"],
                obj["span"],
            ]
        )

    largest = SIZES[-1]
    arr_large = results[(largest, "array")]
    # The array engine must be decisively faster at the largest size; the
    # exact ratio is noisy on shared hosts, so the floor is conservative
    # while the recorded number is the honest measurement.
    assert ab[str(largest)]["speedup_cpu"] > 1.5, (
        f"array engine no longer decisively faster: {ab[str(largest)]}"
    )

    assert arr_large["msf_edges"] <= largest - 1
    assert arr_large["components"] >= 1

    # Per-edge work rises from the cheap empty-forest warmup to a steady
    # state and must then stay flat (no degradation as the forest fills).
    by_ell: dict[int, list[float]] = {}
    for ell, per_edge in arr_large["phases"]:
        by_ell.setdefault(ell, []).append(per_edge)
    for ell, samples in sorted(by_ell.items()):
        steady = samples[len(samples) // 3 :]  # past the warmup
        mid = sorted(steady)[len(steady) // 2]
        assert steady[-1] < 2.0 * mid + 25, (
            f"per-edge work at l={ell} degraded past its steady state"
        )

    record_table(
        "scale_end_to_end",
        format_table(
            ["n", "edges", "object cpu s", "array cpu s", "speedup", "work", "span"],
            rows,
            title=f"Engine A/B scale run (best of {ROUNDS} interleaved rounds; "
            f"{arr_large['msf_edges']} MSF edges, "
            f"{arr_large['components']} components at n = {largest})",
        ),
    )
    record_json(
        "scale_end_to_end",
        [results[(n, "array")]["cost"] for n in SIZES],
        params={
            "sizes": SIZES,
            "edges_per_size": [3 * n for n in SIZES],
            "batch_sizes": BATCH_SIZES,
            "rounds": ROUNDS,
            "engines": ["object", "array"],
        },
        extra={
            "ab": ab,
            "largest_size_speedup_cpu": ab[str(largest)]["speedup_cpu"],
            "msf_edges": arr_large["msf_edges"],
            "components": arr_large["components"],
        },
    )
