"""Gateway serving scaling: end-to-end reads/s vs follower *processes*.

Claim under test: moving followers out of the primary's OS process keeps
buying read throughput after the primary's interpreter is saturated.
The serving process sustains a bursty sliding-window ingest (back-to-back
durable commits, the write lock held across multi-millisecond structure
applies); at 0 workers every gateway read falls through to the
in-process :class:`~repro.service.query.QueryService` and queues behind
that lock.  Each ``python -m repro.replication.worker`` subprocess tails
the shared WAL under its **own interpreter lock**, so routed reads
neither wait on the primary's writer lock nor on its GIL -- while the
primary applies a round, the frames already in flight at k workers are
being evaluated concurrently in k other interpreters.  End-to-end
reads/s must therefore rise monotonically over worker counts 0/1/2/4,
with e2e p50/p99 (measured from *scheduled arrival*, open-loop)
recorded per point.

Harness: per configuration, this process hosts the durable primary, the
ingest thread, and the gateway, and spawns k worker subprocesses sharing
its WAL directory; :func:`repro.loadgen.run_load` offers a seeded
open-loop read-heavy stream well above capacity for a fixed wall budget,
so measured throughput is the configuration's capacity, not the offered
rate.  Worker tail polling uses a fixed aggregate budget (interval
scaled by k, one round per poll) so replay overhead is constant across
configurations -- workers serve bounded-stale reads, which is what the
tokenless consistency level asks for.  Per point we keep the **median**
of ``PASSES`` runs (scheduler noise on a shared box is one-sided:
medians, unlike best-of, do not crown a lucky outlier).

``REPRO_BENCH_SMOKE=1`` shrinks the sweep to worker counts 0/1, one
sub-second pass each, and skips the scaling assertion (a shared CI
runner cannot promise monotone timings); the committed artifact
``bench_results/gateway.json`` comes from a full run.
"""

from __future__ import annotations

import itertools
import os
import random
import statistics
import subprocess
import sys
import threading
import time

from repro.analysis import format_table
from repro.gateway import Gateway, GatewayConfig
from repro.graphgen import bursty_stream
from repro.loadgen import LoadConfig, run_load
from repro.replication import ReplicatedService
from repro.runtime import CostModel
from repro.service import ServiceConfig
from repro.sliding_window import SWConnectivityEager

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

N = 256
WORKER_COUNTS = [0, 1] if SMOKE else [0, 1, 2, 4]
MEASURE_S = 0.5 if SMOKE else 2.5
PASSES = 1 if SMOKE else 5
WINDOW = 1024
BASE_BATCH = 16
BURST_BATCH = 48
INGEST_ROUNDS = 200  # cycled; outlasts the measurement window
PRELOAD_ROUNDS = 8  # rounds committed before workers bootstrap
CLIENTS = 10_000
THINK_S = 2.0  # offered rate = CLIENTS / THINK_S = 5000 req/s >> capacity
READ_FRACTION = 0.97  # a trickle of HTTP writes keeps /v1/write in the loop
POOL = 16  # enough in-flight requests to feed every worker connection
TAIL_INTERVAL_S = 0.05  # per worker poll; scaled by k (aggregate budget)
BUSY_TIMEOUT_S = 0.02  # fail over quickly when a replay poll holds a worker


def _spawn_worker(data_dir, fid: int, k: int) -> tuple[subprocess.Popen, str]:
    """Start one worker subprocess; returns (proc, "host:port")."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.replication.worker",
            "--data-dir", str(data_dir),
            "--structure", "SWConnectivityEager",
            "--n", str(N), "--seed", "13",
            "--port", "0", "--fid", str(fid),
            "--tail-interval", str(TAIL_INTERVAL_S * k),
            "--max-records", "1",
            "--busy-timeout", str(BUSY_TIMEOUT_S),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("REPRO-WORKER READY"):
        proc.kill()
        raise RuntimeError(f"worker {fid} failed to start: {line!r}")
    _, _, host, port, _ = line.split()
    return proc, f"{host}:{port}"


def _run_config(workers: int, tmp_path, engine: str, cost: CostModel):
    """One pass: returns (reads/s, p50 ms, p99 ms, ingest rounds/s)."""

    def factory():
        return SWConnectivityEager(N, seed=13, cost=cost, engine=engine)

    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=0, fsync=True)
    data_dir = tmp_path / f"gw-{workers}"
    rng = random.Random(13)
    stream = bursty_stream(
        N,
        rounds=INGEST_ROUNDS,
        base_batch=BASE_BATCH,
        burst_batch=BURST_BATCH,
        window=WINDOW,
        rng=rng,
    )
    procs: list[subprocess.Popen] = []
    with ReplicatedService(factory, data_dir, cfg, followers=0) as rs:
        # Populate the window before workers bootstrap, so every replica
        # answers over a warm structure.
        for batch in itertools.islice(itertools.cycle(stream), PRELOAD_ROUNDS):
            rs.write(batch.edges, expire=batch.expire)
        addrs = []
        try:
            for fid in range(workers):
                proc, addr = _spawn_worker(data_dir, fid, workers)
                procs.append(proc)
                addrs.append(addr)
            gw = Gateway(rs, GatewayConfig(port=0, workers=tuple(addrs)))
            with gw:
                gw.start()
                host, port = gw.address
                stop = threading.Event()
                committed = [0]

                def ingest() -> None:
                    # Back-to-back durable commits: the write lock is
                    # the contended resource the worker tier routes
                    # reads around.
                    for batch in itertools.cycle(stream):
                        if stop.is_set():
                            return
                        rs.write(batch.edges, expire=batch.expire)
                        committed[0] += 1

                writer = threading.Thread(target=ingest, daemon=True)
                writer.start()
                time.sleep(0.05)  # let ingest reach steady state
                t0 = time.perf_counter()
                report = run_load(
                    host,
                    port,
                    LoadConfig(
                        duration_s=MEASURE_S,
                        clients=CLIENTS,
                        think_s=THINK_S,
                        read_fraction=READ_FRACTION,
                        n=N,
                        pool=POOL,
                        seed=13,
                    ),
                )
                ingest_wall = time.perf_counter() - t0
                stop.set()
                writer.join()
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    return (
        report.reads_per_s,
        report.p50_ms,
        report.p99_ms,
        committed[0] / ingest_wall,
    )


def test_gateway_scaling(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}

    def run():
        cost = CostModel()
        rows = []
        for k in WORKER_COUNTS:
            passes = [
                _run_config(k, tmp_path / f"p{i}", engine, cost)
                for i in range(PASSES)
            ]
            # Median per metric across passes: a per-pass tuple would
            # couple the latency columns to whichever pass had the
            # median throughput.
            rows.append(
                (k, *(statistics.median(p[j] for p in passes) for j in range(4)))
            )
        state.clear()
        state.update(cost=cost, rows=rows)

    t0 = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    cost, rows = state["cost"], state["rows"]

    table = format_table(
        ["workers", "reads/s", "p50 ms", "p99 ms", "ingest/s"],
        [
            [k, f"{r:.0f}", f"{p50:.1f}", f"{p99:.1f}", f"{w:.0f}"]
            for k, r, p50, p99, w in rows
        ],
        title=(
            f"Gateway serving scaling: open-loop HTTP load "
            f"({CLIENTS} clients, think {THINK_S:.0f}s) against a "
            f"saturated fsync primary, n = {N}, median of {PASSES} x "
            f"{MEASURE_S:.1f}s per config"
        ),
    )
    record_table("gateway", table)
    record_json(
        "gateway",
        cost,
        params={
            "n": N,
            "workers": WORKER_COUNTS,
            "measure_s": MEASURE_S,
            "passes": PASSES,
            "clients": CLIENTS,
            "think_s": THINK_S,
            "read_fraction": READ_FRACTION,
            "pool": POOL,
            "window": WINDOW,
            "base_batch": BASE_BATCH,
            "burst_batch": BURST_BATCH,
            "tail_interval_s": TAIL_INTERVAL_S,
            "busy_timeout_s": BUSY_TIMEOUT_S,
            "seed": 13,
        },
        extra={
            "reads_per_sec": {str(k): r for k, r, _, _, _ in rows},
            "p50_ms": {str(k): p for k, _, p, _, _ in rows},
            "p99_ms": {str(k): p for k, _, _, p, _ in rows},
            "ingest_rounds_per_sec": {str(k): w for k, _, _, _, w in rows},
        },
        wall_s=wall,
    )
    tputs = [r for _, r, _, _, _ in rows]
    assert min(tputs) > 0
    if not SMOKE:
        # The committed artifact's claim: out-of-process followers buy
        # monotone end-to-end read throughput, 0 -> 4 worker processes.
        for prev, nxt in zip(tputs, tputs[1:]):
            assert nxt > prev
