"""Batched read throughput vs batch size through ``QueryService``.

Claim under test: the vectorized batch read kernels make grouped reads
*cheap* -- ``QueryService`` groups a mixed read batch by kind and answers
each group off one shared ``batch-query`` sweep of the RC tree
(``batch_is_connected`` / ``batch_heaviest_edges``; docs/batch_queries.md),
so per-query cost falls as the batch grows.  A batch of one pays the full
routing + root-walk price per answer; a batch of 256 pays it once and
amortizes a single SoA level sweep over every pair.

Harness: a primary ingests a bursty sliding-window stream, one follower
replays it, and a single reader issues fixed query batches (alternating
``connected`` / ``path_max``) through :class:`~repro.service.query.
QueryService` for a wall budget, at batch sizes 1/16/64/256.  Per size we
record answered queries/sec and the speedup over the single-query
configuration, as a versioned JSON record that
``python -m repro.report --trace`` renders.  Run with
``REPRO_BENCH_ENGINE=ab`` for the object-vs-array comparison; the array
engine must clear ``SPEEDUP_FLOOR`` x at every batch size >= 64.

``REPRO_BENCH_SMOKE=1`` shrinks everything to a CI-sized smoke run (tiny
n, one ingest round, no throughput assertion).
"""

from __future__ import annotations

import os
import random
import time

from repro.analysis import format_table
from repro.graphgen import bursty_stream
from repro.replication import ReplicatedService
from repro.runtime import CostModel
from repro.service import QueryService, ServiceConfig
from repro.sliding_window import SWConnectivityEager

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

N = 64 if SMOKE else 1024
INGEST_ROUNDS = 1 if SMOKE else 160
BASE_BATCH = 16
BURST_BATCH = 48
WINDOW = 256 if SMOKE else 4096
BATCH_SIZES = [1, 16, 64, 256]
MEASURE_S = 0.05 if SMOKE else 1.0
PASSES = 1 if SMOKE else 2
SPEEDUP_FLOOR = 5.0  # array-engine floor at batch >= 64


def _query_batch(rng: random.Random, size: int) -> list[tuple]:
    """A fixed mixed read batch: alternating connectivity / path-max."""
    out: list[tuple] = []
    for i in range(size):
        u, v = rng.randrange(N), rng.randrange(N)
        out.append(("connected", u, v) if i % 2 == 0 else ("path_max", u, v))
    return out


def test_batch_reads(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}

    def run():
        cost = CostModel()

        def factory():
            return SWConnectivityEager(N, seed=13, cost=cost, engine=engine)

        cfg = ServiceConfig(flush_edges=10**9, snapshot_every=0, fsync=False)
        rng = random.Random(13)
        stream = bursty_stream(
            N,
            rounds=INGEST_ROUNDS,
            base_batch=BASE_BATCH,
            burst_batch=BURST_BATCH,
            window=WINDOW,
            rng=rng,
        )
        rows = []
        with ReplicatedService(
            factory, tmp_path / f"svc-{engine}", cfg, followers=1
        ) as rs:
            for b in stream:
                rs.write(b.edges, expire=b.expire)
            # on_lag="catch_up" replays the follower on first contact; the
            # window is static during measurement, so every subsequent read
            # is a pure query -- the batch-read path is all that varies.
            qs = QueryService(rs, on_lag="catch_up", spread_lag=10**9)
            for size in BATCH_SIZES:
                batch = _query_batch(random.Random(101 + size), size)
                qs.run(batch)  # warm: replay + first-touch caches
                best = 0.0
                for _ in range(PASSES):
                    answered = 0
                    t0 = time.perf_counter()
                    deadline = t0 + MEASURE_S
                    while time.perf_counter() < deadline:
                        res = qs.run(batch)
                        answered += len(res.answers)
                    best = max(best, answered / (time.perf_counter() - t0))
                rows.append((size, best))
        state.clear()
        state.update(cost=cost, rows=rows)

    benchmark.pedantic(run, rounds=1, iterations=1)
    cost, rows = state["cost"], state["rows"]

    base = rows[0][1]
    speedups = {size: tput / base for size, tput in rows}
    table = format_table(
        ["batch", "queries/s", "speedup vs batch=1"],
        [
            [size, f"{tput:.0f}", f"{speedups[size]:.1f}x"]
            for size, tput in rows
        ],
        title=(
            f"Batched reads over QueryService ({engine} engine): one "
            f"follower, n = {N}, static window, {MEASURE_S:.1f}s per size"
        ),
    )
    record_table("batch_reads", table)
    record_json(
        "batch_reads",
        cost,
        params={
            "n": N,
            "batch_sizes": BATCH_SIZES,
            "measure_s": MEASURE_S,
            "ingest_rounds": INGEST_ROUNDS,
            "base_batch": BASE_BATCH,
            "burst_batch": BURST_BATCH,
            "window": WINDOW,
            "smoke": SMOKE,
            "seed": 13,
        },
        extra={
            "queries_per_sec": {str(size): tput for size, tput in rows},
            "speedup_vs_single": {
                str(size): speedups[size] for size, _ in rows
            },
        },
    )
    if not SMOKE and engine == "array":
        # The tentpole's headline claim: batched reads on the array engine
        # beat single-query reads >= 5x once the batch reaches 64.
        for size, _ in rows:
            if size >= 64:
                assert speedups[size] >= SPEEDUP_FLOOR, (size, speedups[size])
