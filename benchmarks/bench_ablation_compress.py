"""ABL-compress -- ablation: the contraction's compress rule.

The paper's conclusion notes its span is "bottlenecked by the span of the
RC tree algorithms" and that a faster contraction "would improve the span
of the results in this paper.  We believe that such an algorithm is
possible."  This harness explores one step in that direction: next to the
classic Miller-Reif rule (compress iff H(v), T(u), T(w) -- probability 1/8
on a chain), an *ordered* rule only requires tails from larger-id degree-2
neighbours.  Adjacent compressions remain impossible (for adjacent eligible
v < x, v needs H(x) = 0 while x needs H(x) = 1), but chain vertices
compress ~2.25x more often, roughly halving contraction depth, leveled
storage, and update work -- with bit-identical MSF semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.core import BatchIncrementalMSF
from repro.graphgen import gnm_edges, path_edges
from repro.runtime import CostModel, measure
from repro.trees import DynamicForest

N = 4096
RULES = ("mr", "ordered")


def test_compress_rule_ablation(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        rows = []
        for rule in RULES:
            rng = random.Random(3)
            cost = CostModel()
            f = DynamicForest(N, seed=3, cost=cost, compress_rule=rule)
            edges = [
                (u, v, w, i) for i, (u, v, w) in enumerate(path_edges(N, rng))
            ]
            with measure(cost) as build:
                f.batch_link(edges)
            churn = rng.sample(edges, 48)
            with measure(cost) as upd:
                for u, v, w, eid in churn:
                    f.batch_cut([eid])
                    f.batch_link([(u, v, w, eid)])
            costs.append(cost)
            stats = f.rc.level_statistics()
            with measure(cost) as q:
                for _ in range(32):
                    f.path_max(rng.randrange(N), rng.randrange(N))
            rows.append(
                [
                    rule,
                    len(stats),
                    sum(stats),
                    build.work,
                    round(upd.work / 96, 1),
                    round(q.work / 32, 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "compress rule",
            "levels",
            "leveled storage",
            "build work",
            "update work/op",
            "query work",
        ],
        rows,
        title=f"Ablation: compress rule on a path, n = {N} (conclusion's "
        "'faster RC tree' direction)",
    )
    record_table("ablation_compress_rule", table)
    record_json(
        "ablation_compress_rule",
        costs,
        params={"n": N, "rules": list(RULES), "churn_ops": 48, "queries": 32},
    )
    mr, ordered = rows
    assert ordered[1] < mr[1], "ordered rule must shorten the contraction"
    assert ordered[2] < mr[2], "ordered rule must shrink leveled storage"
    assert ordered[4] < mr[4], "ordered rule must cheapen updates"


def test_rules_agree_on_msf(record_table, benchmark, engine):
    def run():
        rng = random.Random(5)
        edges = gnm_edges(512, 2048, rng)
        outputs = []
        for rule in RULES:
            m = BatchIncrementalMSF(512, seed=5, compress_rule=rule)
            for i in range(0, len(edges), 256):
                m.batch_insert(edges[i : i + 256])
            outputs.append(sorted(e[3] for e in m.msf_edges()))
        return outputs

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b, "the compress rule must never change the MSF"
    record_table(
        "ablation_compress_rule_agreement",
        f"MSF identical under both compress rules ({len(a)} edges) -- the "
        "rule affects only contraction shape, never semantics",
    )


@pytest.mark.parametrize("rule", RULES)
def test_wallclock_path_build(benchmark, rule, engine):
    def build():
        rng = random.Random(7)
        f = DynamicForest(N, seed=7, compress_rule=rule)
        f.batch_link(
            [(u, v, w, i) for i, (u, v, w) in enumerate(path_edges(N, rng))]
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
