"""THM1.1 -- the headline bound: BatchInsert of l edges into an n-vertex MSF
costs O(l lg(1 + n/l)) expected work and O(lg^2 n) span w.h.p.

Harness: build a random forest on n vertices, then measure the cost model's
(work, span) for one batch of l random edges across a geometric l sweep.
The claimed model must fit the measured work with a visibly smaller
residual than the naive alternatives (l lg n, n, l); the span must fit
lg^2 n across an n sweep.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import BOUND_MODELS, format_table, goodness_of_fit
from repro.core import BatchIncrementalMSF
from repro.graphgen import gnm_edges, random_tree_edges
from repro.runtime import CostModel, measure

N = 4096
ELLS = [1, 4, 16, 64, 256, 1024, 4096]


def _prepared_structure(n: int, seed: int) -> BatchIncrementalMSF:
    """An MSF over a random forest covering ~n/2 vertices."""
    rng = random.Random(seed)
    cost = CostModel()
    m = BatchIncrementalMSF(n, seed=seed, cost=cost)
    base = random_tree_edges(n // 2, rng)
    m.batch_insert(base)
    return m


def _measure_batch_work(n: int, ell: int, seed: int) -> tuple[int, int, CostModel]:
    rng = random.Random(seed * 7919 + ell)
    m = _prepared_structure(n, seed)
    batch = gnm_edges(n, ell, rng)
    with measure(m.cost) as c:
        m.batch_insert(batch)
    return c.work, c.span, m.cost


def test_work_scaling_matches_bound(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for ell in ELLS:
            work, span, cost = _measure_batch_work(N, ell, seed=1)
            costs.append(cost)
            out.append((ell, work, span))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    xs, ys = [], []
    for ell, work, span in data:
        xs.append((ell, N))
        ys.append(work)
        bound = BOUND_MODELS["l*lg(1+n/l)"](ell, N)
        rows.append([ell, work, f"{work / bound:.1f}", span])
    fits = {
        name: goodness_of_fit(xs, ys, BOUND_MODELS[name])[1]
        for name in ("l*lg(1+n/l)", "l*lg(n)", "l", "n")
    }
    table = format_table(
        ["l", "work", "work / (l lg(1+n/l))", "span"],
        rows,
        title=f"Theorem 1.1: batch insert work, n = {N}",
    )
    fit_table = format_table(
        ["model", "relative residual"],
        [[k, f"{v:.3f}"] for k, v in sorted(fits.items(), key=lambda kv: kv[1])],
        title="model fits (lower is better; the paper's bound should win)",
    )
    record_table("thm11_work_scaling", table + "\n\n" + fit_table)
    record_json(
        "thm11_work_scaling",
        costs,
        params={"n": N, "ells": ELLS, "seed": 1},
        extra={"fit_residuals": {k: round(v, 6) for k, v in fits.items()}},
    )
    assert fits["l*lg(1+n/l)"] < fits["n"]
    assert fits["l*lg(1+n/l)"] < fits["l*lg(n)"]


def test_span_scaling_polylog(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for n in (256, 1024, 4096):
            _, span, cost = _measure_batch_work(n, 64, seed=2)
            costs.append(cost)
            out.append((n, span))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for n, span in data:
        bound = BOUND_MODELS["lg^2(n)"](64, n)
        rows.append([n, span, f"{span / bound:.1f}"])
    table = format_table(
        ["n", "span", "span / lg^2(n)"],
        rows,
        title="Theorem 1.1: batch insert span, l = 64",
    )
    record_table("thm11_span_scaling", table)
    record_json(
        "thm11_span_scaling",
        costs,
        params={"ns": [256, 1024, 4096], "ell": 64, "seed": 2},
    )
    # Span must grow far slower than n: polylog shape.
    spans = [r[1] for r in rows]
    assert spans[-1] <= spans[0] * 8  # 16x n growth, <= 8x span growth


@pytest.mark.parametrize("ell", [16, 256, 4096])
def test_wallclock_batch_insert(benchmark, ell, engine):
    seeds = iter(range(10_000))

    def setup():
        s = next(seeds)
        rng = random.Random(s)
        m = _prepared_structure(N, s)
        return (m, gnm_edges(N, ell, rng)), {}

    benchmark.pedantic(
        lambda m, batch: m.batch_insert(batch), setup=setup, rounds=3
    )
