"""T1-bip -- Table 1 row "Bipartiteness".

Claims: incremental O(l alpha(n)) work; sliding window O(l lg(1 + n/l))
work; ``isBipartite`` in O(1).

Harness: a stream of bipartition-respecting edges with periodic odd-cycle
violations; measures per-edge work in both models and checks that the
verdict flips exactly as violations enter and leave the window (the
behaviour the double-cover reduction must deliver).
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.analysis import format_table
from repro.connectivity import IncrementalBipartiteness
from repro.graphgen import bipartite_stream
from repro.runtime import CostModel, measure
from repro.sliding_window import SWBipartiteness

N = 512
ELLS = [4, 16, 64, 256]


def _measure(model: str, ell: int, seed: int) -> float:
    rng = random.Random(seed)
    cost = CostModel()
    if model == "window":
        struct = SWBipartiteness(N, seed=seed, cost=cost)
    else:
        struct = IncrementalBipartiteness(N, seed=seed, cost=cost)
    stream = bipartite_stream(
        N, rounds=5, batch_size=ell, window=4 * ell, rng=rng, violation_every=3
    )
    inserted = 0
    work = 0
    for b in stream:
        with measure(cost) as c:
            struct.batch_insert(list(b.edges))
            if model == "window" and b.expire:
                struct.batch_expire(b.expire)
            struct.is_bipartite()
        inserted += len(b.edges)
        work += c.work
    return work / max(inserted, 1), cost


def test_table1_row_bipartiteness(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for ell in ELLS:
            inc, inc_cost = _measure("incremental", ell, 17)
            sw, sw_cost = _measure("window", ell, 17)
            costs.extend([inc_cost, sw_cost])
            out.append((ell, inc, sw))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[ell, f"{inc:.0f}", f"{sw:.0f}"] for ell, inc, sw in data]
    table = format_table(
        ["l", "incr work/edge", "window work/edge"],
        rows,
        title=f"Table 1 'Bipartiteness': per-edge work, n = {N}",
    )
    record_table("table1_bipartiteness", table)
    record_json(
        "table1_bipartiteness",
        costs,
        params={"n": N, "ells": ELLS, "rounds": 5, "seed": 17},
    )
    for _, inc, sw in data:
        assert inc < sw  # alpha(n) vs lg factor
        assert sw < N


def test_verdict_tracks_window(record_table, benchmark, engine):
    rng = random.Random(21)
    sw = SWBipartiteness(64, seed=21)
    stream = bipartite_stream(64, rounds=24, batch_size=6, window=30, rng=rng, violation_every=4)

    def drive():
        log = []
        window: list[tuple[int, int]] = []
        for b in stream:
            sw.batch_insert(list(b.edges))
            window.extend(b.edges)
            if b.expire:
                sw.batch_expire(b.expire)
                del window[: b.expire]
            g = nx.Graph(window)
            g.add_nodes_from(range(64))
            expect = nx.is_bipartite(g)
            got = sw.is_bipartite()
            assert got == expect
            log.append([len(window), "yes" if got else "NO"])
        return log

    log = benchmark.pedantic(drive, rounds=1, iterations=1)
    flips = sum(1 for a, b in zip(log, log[1:]) if a[1] != b[1])
    record_table(
        "table1_bipartiteness_trace",
        format_table(
            ["window size", "bipartite?"],
            log,
            title=f"Bipartiteness verdict over the stream ({flips} flips as "
            "violations enter/leave the window)",
        ),
    )
    assert flips >= 2  # verdict actually responds to the window


@pytest.mark.parametrize("ell", [16, 256])
def test_wallclock_round(benchmark, ell, engine):
    rng = random.Random(2)
    sw = SWBipartiteness(N, seed=2)

    def setup():
        batch = []
        for _ in range(ell):
            u = rng.randrange(0, N, 2)
            v = rng.randrange(1, N, 2)
            batch.append((u, v))
        return (batch,), {}

    benchmark.pedantic(lambda b: sw.batch_insert(b), setup=setup, rounds=3)
