"""Chaos recovery: follower time-to-caught-up and read availability
through a primary failover.

Claim under test: the resilience machinery keeps the read tier *useful*
through the two failures it was built for.

1. **Recovery** -- a replica that died and restarted bootstraps from the
   newest checkpoint and replays only the rounds since it; its
   time-to-caught-up is bounded by the checkpoint interval, *independent
   of how long it was dead* (backlogs of 20/60/120 rounds all replay at
   most ``SNAPSHOT_EVERY`` rounds).
2. **Availability** -- with ``on_primary_down="degrade"``, reads keep
   being answered while the primary is dead and no failover has happened
   yet (flagged stale), and turn fresh again after a promotion.  The
   measured availability through the whole kill -> degraded window ->
   promote -> recommit timeline must be nonzero (it is 1.0 by design;
   the assertion leaves room only for genuine regression).

Harness: deterministic single-threaded timelines (tick-based
replication, no scheduler noise).  Recovery kills one of two followers
at a chosen round, keeps ingesting, restarts it at the end and times
``catch_up()`` to the durable tip, per backlog size.  Availability
ingests ``ROUNDS`` rounds, kills the primary mid-run via the
``before-wal-append`` failpoint, attempts one read batch every round
throughout (degraded mode while down, fresh after the scripted
promotion), and reports attempted/served/stale/degraded counts plus the
recommit check.  Results land in ``bench_results/chaos_recovery.{txt,json}``.
"""

from __future__ import annotations

import random
import time

from repro.analysis import format_table
from repro.graphgen import bursty_stream
from repro.replication import ReplicatedService
from repro.runtime import CostModel
from repro.service import (
    InjectedCrash,
    QueryService,
    ServiceClosed,
    ServiceConfig,
)
from repro.sliding_window import SWConnectivityEager

N = 256
ROUNDS = 166  # deliberately not a checkpoint multiple: recovery replays a tail
KILL_AT = ROUNDS // 2
BACKLOGS = [20, 60, 120]
SNAPSHOT_EVERY = 16
BASE_BATCH = 6
BURST_BATCH = 18
WINDOW = 256
SEED = 13
QUERY_BATCH = [
    ("connected", 0, 1),
    ("components",),
    ("window_size",),
]


def _stream(rounds):
    rng = random.Random(SEED)
    return bursty_stream(
        N,
        rounds=rounds,
        base_batch=BASE_BATCH,
        burst_batch=BURST_BATCH,
        window=WINDOW,
        rng=rng,
    )


def _factory(engine, cost):
    def make():
        return SWConnectivityEager(N, seed=SEED, cost=cost, engine=engine)

    return make


def _recovery_run(backlog, tmp_path, engine, cost):
    """Kill a follower ``backlog`` rounds before the end; time its replay."""
    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=SNAPSHOT_EVERY)
    with ReplicatedService(
        _factory(engine, cost), tmp_path / f"rec-{backlog}", cfg, followers=2
    ) as svc:
        victim = svc.followers[0]
        for step, b in enumerate(_stream(ROUNDS)):
            if step == ROUNDS - backlog:
                victim.kill()
            svc.write(b.edges, expire=b.expire)
            for f in svc.followers:
                if f.alive:
                    f.catch_up()
        tip = svc.primary.next_lsn
        t0 = time.perf_counter()
        victim.restart()  # bootstraps from the newest checkpoint
        boot_lsn = victim.replayed_lsn
        victim.catch_up()
        wall = time.perf_counter() - t0
        assert victim.replayed_lsn == tip
        return wall * 1e3, tip - boot_lsn


def _availability_run(tmp_path, engine, cost):
    """Read every round through kill -> degraded outage -> promotion."""
    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=0)
    outage = {"attempted": 0, "served": 0, "stale": 0}
    overall = {"attempted": 0, "served": 0, "stale": 0}
    down_rounds = 0
    with ReplicatedService(
        _factory(engine, cost), tmp_path / "avail", cfg, followers=2
    ) as svc:
        qs = QueryService(svc, on_primary_down="degrade")
        for step, b in enumerate(_stream(ROUNDS)):
            if step == KILL_AT:
                svc.primary.failpoints["before-wal-append"] = lambda lsn: True
            down = not svc.primary.alive or step == KILL_AT
            try:
                svc.write(b.edges, expire=b.expire)
            except (InjectedCrash, ServiceClosed):
                # The primary is dead; ingest rejects writes for the
                # outage window (the rounds are lost to this timeline,
                # as with any un-replicated primary death).  Keep reading
                # through it -- exactly the gap degrade mode exists for.
                pass
            if svc.primary.alive:
                for f in svc.followers:
                    if f.alive:
                        f.catch_up()
            else:
                down_rounds += 1
                if down_rounds >= 10:
                    best = max(
                        (f for f in svc.followers if f.alive),
                        key=lambda f: f.replayed_lsn,
                    )
                    svc.promote(best, catch_up=True)
                    svc.add_follower()
                    svc.write(b.edges, expire=b.expire)  # recommit
                    down = False
            overall["attempted"] += 1
            if down:
                outage["attempted"] += 1
            try:
                if down:
                    # Read-your-writes against the round that died with
                    # the primary: the token can never be satisfied, so
                    # the router must serve it degraded (stale) rather
                    # than error -- availability over consistency.
                    res = qs.run(
                        QUERY_BATCH, at_least=svc.primary.next_lsn
                    )
                else:
                    res = qs.run(QUERY_BATCH)
            except Exception:
                continue
            overall["served"] += 1
            overall["stale"] += res.stale
            if down:
                outage["served"] += 1
                outage["stale"] += res.stale
        # After failover the tier is fresh again: a read-your-writes
        # token round-trips without degrade.
        token = svc.write([(0, 1)])
        res = qs.run(QUERY_BATCH, at_least=token)
        assert not res.stale
    return overall, outage, down_rounds


def test_chaos_recovery(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}

    def run():
        cost = CostModel()
        rec_rows = [
            _recovery_run(b, tmp_path, engine, cost) for b in BACKLOGS
        ]
        overall, outage, down_rounds = _availability_run(
            tmp_path, engine, cost
        )
        state.clear()
        state.update(
            cost=cost,
            rec_rows=rec_rows,
            overall=overall,
            outage=outage,
            down_rounds=down_rounds,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    cost = state["cost"]
    rec_rows = state["rec_rows"]
    overall, outage = state["overall"], state["outage"]

    avail = overall["served"] / overall["attempted"]
    outage_avail = (
        outage["served"] / outage["attempted"] if outage["attempted"] else 0.0
    )
    rows = [
        [b, f"{ms:.1f}", replayed]
        for b, (ms, replayed) in zip(BACKLOGS, rec_rows)
    ] + [
        ["-", "-", "-"],
        [
            f"failover ({state['down_rounds']} rounds down)",
            f"{outage_avail:.0%} outage avail",
            f"{outage['stale']} stale",
        ],
    ]
    table = format_table(
        ["backlog (rounds)", "catch-up (ms)", "replayed"],
        rows,
        title=(
            f"Chaos recovery: follower time-to-caught-up and read "
            f"availability through primary failover, n = {N}, "
            f"{ROUNDS} rounds, availability {avail:.0%}"
        ),
    )
    record_table("chaos_recovery", table)
    record_json(
        "chaos_recovery",
        cost,
        params={
            "n": N,
            "rounds": ROUNDS,
            "kill_at": KILL_AT,
            "backlogs": BACKLOGS,
            "base_batch": BASE_BATCH,
            "burst_batch": BURST_BATCH,
            "window": WINDOW,
            "snapshot_every": SNAPSHOT_EVERY,
            "seed": SEED,
        },
        extra={
            "catch_up_ms": {str(b): ms for b, (ms, _) in zip(BACKLOGS, rec_rows)},
            "availability": avail,
            "outage_availability": outage_avail,
            "outage_reads": outage,
            "overall_reads": overall,
            "down_rounds": state["down_rounds"],
        },
    )
    # The acceptance bar: reads flowed *through* the failover.
    assert outage["attempted"] > 0
    assert outage_avail > 0.0
    assert outage["stale"] > 0  # degraded reads actually happened
    assert avail == 1.0  # nothing was dropped end to end
    # Recovery replay is bounded by the checkpoint interval, no matter
    # how long the replica was dead -- and actually exercised (nonzero).
    assert all(0 < r <= SNAPSHOT_EVERY for _, r in rec_rows)
