"""T1-sparsifier -- Table 1 row "eps-sparsifier".

Claims: sliding-window batch insert O(eps^-2 l lg^4 n lg(1 + n/l)) work;
sparsify() returns an eps-sparsifier with O(eps^-2 n lg^3 n) edges.

Harness (with the reduced polylog constants documented in DESIGN.md):
per-edge insert work across an l sweep, sparsifier size versus window
density, and cut-preservation quality on a dense window.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.analysis import format_table
from repro.runtime import CostModel, measure
from repro.sliding_window import SWSparsifier

N = 32
ELLS = [8, 32, 128]


def _fresh(seed: int, cost=None) -> SWSparsifier:
    return SWSparsifier(N, eps=1.0, seed=seed, cost=cost)


def test_table1_row_sparsifier_insert_work(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for ell in ELLS:
            rng = random.Random(ell)
            cost = CostModel()
            costs.append(cost)
            sp = _fresh(31, cost=cost)
            inserted = 0
            work = 0
            for _ in range(3):
                batch = []
                for _ in range(ell):
                    u, v = rng.randrange(N), rng.randrange(N)
                    if u != v:
                        batch.append((u, v))
                with measure(cost) as c:
                    sp.batch_insert(batch)
                work += c.work
                inserted += len(batch)
            out.append((ell, work / max(inserted, 1)))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[ell, f"{w:.0f}"] for ell, w in data]
    table = format_table(
        ["l", "insert work/edge"],
        rows,
        title=(
            f"Table 1 'eps-sparsifier': per-edge insert work, n = {N} "
            "(polylog constants reduced; see DESIGN.md)"
        ),
    )
    record_table("table1_sparsifier_work", table)
    record_json(
        "table1_sparsifier_work",
        costs,
        params={"n": N, "ells": ELLS, "eps": 1.0, "rounds": 3},
    )
    # Per-edge work is polylog-bounded: flat-ish in l, far below n^2.
    works = [w for _, w in data]
    assert max(works) < 40 * min(works)


def test_sparsifier_size_and_quality(record_table, benchmark, engine):
    rng = random.Random(37)

    def run():
        sp = _fresh(37)
        # Sampling engages once connectivity exceeds eps^-2 lg^2 n, so the
        # window is a multiplicity-8 complete multigraph (min cut ~ 8(n-1)).
        edges = [(i, j) for i in range(N) for j in range(i + 1, N)] * 8
        rng.shuffle(edges)
        sp.batch_insert(edges)
        out = sp.sparsify()
        return edges, out

    edges, out = benchmark.pedantic(run, rounds=1, iterations=1)
    g = nx.Graph()
    g.add_nodes_from(range(N))
    g.add_edges_from(edges)
    h = nx.Graph()
    h.add_nodes_from(range(N))
    for u, v, w in out:
        if h.has_edge(u, v):
            h[u][v]["weight"] += w
        else:
            h.add_edge(u, v, weight=w)

    ratios = []
    for _ in range(40):
        s = set(rng.sample(range(N), rng.randrange(1, N)))
        cg = sum(1 for u, v in g.edges() if (u in s) != (v in s))
        if cg == 0:
            continue
        ch = sum(d["weight"] for u, v, d in h.edges(data=True) if (u in s) != (v in s))
        ratios.append(ch / cg)
    rows = [
        ["window edges", len(edges)],
        ["sparsifier edges", len(out)],
        ["compression", f"{len(edges) / max(len(out), 1):.2f}x"],
        ["cut ratio min", f"{min(ratios):.2f}"],
        ["cut ratio median", f"{sorted(ratios)[len(ratios) // 2]:.2f}"],
        ["cut ratio max", f"{max(ratios):.2f}"],
    ]
    record_table(
        "table1_sparsifier_quality",
        format_table(
            ["metric", "value"],
            rows,
            title=f"Theorem 5.8 shape: sparsifier of K_{N} (eps = 1, reduced constants)",
        ),
    )
    assert len(out) < len(edges)
    good = sum(1 for r in ratios if 0.2 <= r <= 5.0)
    assert good >= 0.85 * len(ratios)


@pytest.mark.parametrize("ell", [32])
def test_wallclock_insert(benchmark, ell, engine):
    rng = random.Random(41)
    sp = _fresh(41)

    def setup():
        batch = []
        for _ in range(ell):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                batch.append((u, v))
        return (batch,), {}

    benchmark.pedantic(lambda b: sp.batch_insert(b), setup=setup, rounds=3)
