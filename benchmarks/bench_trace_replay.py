"""Trace capture/replay cost: recording overhead and replay throughput.

Claims under test: trace capture is cheap enough to leave on (one JSON
encode and one buffered append per committed round -- the recorder must
not perturb the workload it measures), and deterministic replay is fast
enough to gate on (a golden trace replays in seconds, so
``scripts/gate.py`` can afford best-of-N measurement in CI).

Harness: record a bursty sliding-window workload with periodic grouped
read batches through a live :class:`~repro.replication.ReplicatedService`
with a :class:`~repro.trace.TraceRecorder` attached, then replay the
trace under three configurations -- 1x preserved rounds (the
byte-identity gate mode), 8x virtual speed, and re-batching mode (ops
re-coalesced under the target flush policy).  Every replay's final state
is asserted byte-identical to the trace oracle (or its own WAL oracle in
re-batching mode) before any number is reported: a fast-but-wrong replay
is worthless.  The recorded trace is left in ``bench_results/`` for
inspection and ad-hoc gating.
"""

from __future__ import annotations

import pathlib
import random
import time

from repro.analysis import format_table
from repro.graphgen import bursty_stream
from repro.replication import ReplicatedService
from repro.runtime import CostModel
from repro.service import QueryService, ServiceConfig
from repro.sliding_window import SWConnectivityEager
from repro.trace import (
    ReplayConfig,
    TraceRecorder,
    TraceReplayer,
    read_trace,
    state_fingerprint,
    trace_oracle,
)
from repro.trace.replay import factory_from_meta

N = 512
ROUNDS = 96
BASE_BATCH = 8
BURST_BATCH = 24
WINDOW = 256
READS_EVERY = 4
SEED = 13

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"
QUERY_BATCH = [
    ("connected", 0, 1),
    ("connected", 2, 3),
    ("path_max", 0, 4),
    ("components",),
    ("window_size",),
]


def _record_trace(trace_path, data_dir, engine, cost):
    """Drive the live pipeline with capture on; returns (wall_s, rounds)."""

    def factory():
        return SWConnectivityEager(N, seed=SEED, cost=cost, engine=engine)

    trace_path.unlink(missing_ok=True)
    rng = random.Random(SEED)
    stream = bursty_stream(
        N,
        rounds=ROUNDS,
        base_batch=BASE_BATCH,
        burst_batch=BURST_BATCH,
        window=WINDOW,
        rng=rng,
    )
    meta = {
        "factory": {"structure": "SWConnectivityEager", "n": N, "seed": SEED},
        "generator": {"kind": "bench_trace_replay", "seed": SEED, "rounds": ROUNDS},
    }
    with TraceRecorder(trace_path, meta=meta) as rec:
        cfg = ServiceConfig(
            flush_edges=10**9, snapshot_every=0, recorder=rec
        )
        svc = ReplicatedService(factory, data_dir, config=cfg)
        qs = QueryService(svc, recorder=rec)
        t0 = time.perf_counter()
        for i, batch in enumerate(stream):
            lsn = svc.write(batch.edges, expire=batch.expire)
            if i % READS_EVERY == 0:
                qs.run(QUERY_BATCH, at_least=lsn)
        wall = time.perf_counter() - t0
        fp = state_fingerprint(svc.primary.structure)
        svc.close()
    return wall, fp


def test_trace_replay(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}
    trace_path = RESULTS_DIR / "trace_replay.trace.jsonl"
    RESULTS_DIR.mkdir(exist_ok=True)

    def run():
        cost = CostModel()
        record_wall, live_fp = _record_trace(
            trace_path, tmp_path / "rec", engine, cost
        )
        meta, events = read_trace(trace_path)
        oracle, _ = trace_oracle(factory_from_meta(meta, engine=engine), events)
        assert state_fingerprint(oracle) == live_fp  # capture was faithful

        modes = [
            ("1x preserved", ReplayConfig(engine=engine)),
            ("8x preserved", ReplayConfig(engine=engine, speed=8.0)),
            (
                "re-batched",
                ReplayConfig(
                    engine=engine,
                    preserve_rounds=False,
                    service=ServiceConfig(flush_edges=64, snapshot_every=0),
                ),
            ),
        ]
        rows = []
        for i, (label, cfg) in enumerate(modes):
            res = TraceReplayer(
                (meta, events),
                factory=factory_from_meta(meta, engine=engine),
                config=cfg,
                data_dir=tmp_path / f"rp{i}",
            ).run()
            assert res.deterministic is True, label
            if cfg.preserve_rounds:
                assert res.fingerprint == live_fp, label
            rows.append((label, res))
        state.clear()
        state.update(
            cost=cost,
            record_wall=record_wall,
            events=len(events),
            rows=rows,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    cost, rows = state["cost"], state["rows"]
    n_events = state["events"]
    record_wall = state["record_wall"]

    table = format_table(
        ["mode", "events/s", "write p99 ms", "reads/s", "wall s"],
        [
            [
                label,
                f"{n_events / res.wall_s:.0f}",
                f"{res.write_p99_ms:.2f}",
                f"{res.reads_per_s:.0f}",
                f"{res.wall_s:.2f}",
            ]
            for label, res in rows
        ],
        title=(
            f"Trace replay: {n_events} events over n = {N}, recorded in "
            f"{record_wall:.2f}s with capture on, replayed per mode"
        ),
    )
    record_table("trace_replay", table)
    record_json(
        "trace_replay",
        cost,
        params={
            "n": N,
            "rounds": ROUNDS,
            "base_batch": BASE_BATCH,
            "burst_batch": BURST_BATCH,
            "window": WINDOW,
            "reads_every": READS_EVERY,
            "seed": SEED,
        },
        wall_s=record_wall,
        extra={
            "trace_events": n_events,
            "record_wall_s": record_wall,
            "replay": {
                label: {
                    "events_per_s": n_events / res.wall_s,
                    "write_p99_ms": res.write_p99_ms,
                    "reads_per_s": res.reads_per_s,
                    "wall_s": res.wall_s,
                }
                for label, res in rows
            },
        },
    )
    # Replay must not be slower than live recording: it skips fsync-free
    # capture but adds oracle checks, so parity is the honest floor.
    assert all(res.rounds == ROUNDS for _, res in rows)
