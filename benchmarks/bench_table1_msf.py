"""T1-msf -- Table 1 row "MSF".

Claims: incremental batch MSF O(l lg(1 + n/l)) work (Theorem 1.1);
sliding-window (1+eps)-approximate MSF O(eps^-1 l lg n lg(1 + n/l)) work
(Theorem 5.4); versus the previous fully-dynamic parallel bound
O(l n lg lg lg n lg(m/n)) [22], which is Omega(n) per batch.

Harness: per-edge work of the exact incremental structure and of the
approximate sliding-window structure for eps in {0.1, 0.3}, across an l
sweep; asserts the eps^-1 lg n factor separates them and that neither
scales with n per edge.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import BOUND_MODELS, format_table
from repro.core import BatchIncrementalMSF
from repro.graphgen import weighted_stream
from repro.runtime import CostModel, measure
from repro.sliding_window import SWApproxMSFWeight

N = 1024
ELLS = [8, 32, 128, 512]
MAX_W = 64.0


def _measure_incremental(ell: int, seed: int) -> tuple[float, CostModel]:
    rng = random.Random(seed)
    cost = CostModel()
    m = BatchIncrementalMSF(N, seed=seed, cost=cost)
    inserted = 0
    work = 0
    for _ in range(5):
        batch = []
        for _ in range(ell):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                batch.append((u, v, rng.uniform(1, MAX_W)))
        with measure(cost) as c:
            m.batch_insert(batch)
        inserted += len(batch)
        work += c.work
    return work / max(inserted, 1), cost


def _measure_sw_approx(ell: int, eps: float, seed: int) -> tuple[float, CostModel]:
    rng = random.Random(seed)
    cost = CostModel()
    sw = SWApproxMSFWeight(N, eps=eps, max_weight=MAX_W, seed=seed, cost=cost)
    stream = weighted_stream(
        N, rounds=5, batch_size=ell, window=4 * ell, rng=rng, weight_range=(1, MAX_W)
    )
    inserted = 0
    work = 0
    for b in stream:
        with measure(cost) as c:
            sw.batch_insert(list(b.edges))
            if b.expire:
                sw.batch_expire(b.expire)
            sw.weight()
        inserted += len(b.edges)
        work += c.work
    return work / max(inserted, 1), cost


def test_table1_row_msf(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        rows = []
        for ell in ELLS:
            inc, inc_cost = _measure_incremental(ell, seed=11)
            a01, a01_cost = _measure_sw_approx(ell, 0.1, seed=11)
            a03, a03_cost = _measure_sw_approx(ell, 0.3, seed=11)
            costs.extend([inc_cost, a01_cost, a03_cost])
            rows.append((ell, inc, a03, a01))
        return rows

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for ell, inc, a03, a01 in data:
        bound = BOUND_MODELS["l*lg(1+n/l)"](ell, N) / ell
        rows.append(
            [
                ell,
                f"{inc:.0f}",
                f"{inc / bound:.1f}",
                f"{a03:.0f}",
                f"{a01:.0f}",
                f"{a01 / a03:.2f}",
            ]
        )
    table = format_table(
        [
            "l",
            "exact work/edge",
            "/ lg(1+n/l)",
            "approx eps=0.3",
            "approx eps=0.1",
            "ratio 0.1/0.3",
        ],
        rows,
        title=f"Table 1 'MSF': per-edge work, n = {N}, W = {MAX_W}",
    )
    record_table("table1_msf", table)
    record_json(
        "table1_msf",
        costs,
        params={"n": N, "ells": ELLS, "epsilons": [0.1, 0.3], "max_weight": MAX_W},
    )
    # Shape: the eps^-1 lg W level count separates approximate from exact;
    # levels(0.1)/levels(0.3) ~ 3, so expect roughly that work ratio.
    for ell, inc, a03, a01 in data:
        assert inc < a03 < a01
        assert 1.5 < a01 / a03 < 6.0
        assert a01 < N  # never Omega(n) per edge (the fully-dynamic cost)


def test_approximation_quality(record_table, benchmark, engine):
    # Sanity companion: estimates really are within (1 + eps).
    rng = random.Random(5)

    def run_one(eps):
        sw = SWApproxMSFWeight(N, eps=eps, max_weight=MAX_W, seed=5)
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(N))
        batch = []
        for _ in range(2 * N):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                w = rng.uniform(1, MAX_W)
                batch.append((u, v, w))
                if not g.has_edge(u, v) or g[u][v]["weight"] > w:
                    g.add_edge(u, v, weight=w)
        sw.batch_insert(batch)
        exact = sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True))
        est = sw.weight()
        assert exact <= est * (1 + 1e-9) <= (1 + eps) * exact * (1 + 1e-9)
        return [eps, f"{exact:.1f}", f"{est:.1f}", f"{est / exact:.4f}"]

    rows = benchmark.pedantic(
        lambda: [run_one(eps) for eps in (0.1, 0.3)], rounds=1, iterations=1
    )
    record_table(
        "table1_msf_quality",
        format_table(
            ["eps", "exact MSF weight", "estimate", "ratio"],
            rows,
            title="Theorem 5.4 approximation quality (must be within 1 + eps)",
        ),
    )


@pytest.mark.parametrize("ell", [32, 512])
def test_wallclock_exact_batch(benchmark, ell, engine):
    rng = random.Random(7)
    m = BatchIncrementalMSF(N, seed=7)

    def setup():
        batch = []
        for _ in range(ell):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                batch.append((u, v, rng.uniform(1, MAX_W)))
        return (batch,), {}

    benchmark.pedantic(lambda b: m.batch_insert(b), setup=setup, rounds=3)
