"""Replicated read scaling: query throughput vs follower count.

Claim under test: the replication layer takes reads off the durable
write path.  The primary ingests with ``fsync=True``, so every commit
holds the writer lock across a disk flush -- a read routed to the
primary (the 0-follower configuration) stalls behind that I/O, while a
read routed to a follower never touches the write path at all (replay
is in-memory; durability was already paid by the primary).  Batch-read
throughput with followers must therefore clear the primary-only floor,
and adding followers must not degrade it (busy-avoiding round-robin
routing spreads concurrent readers across the allowed replicas, skipping
any replica whose lock a replay poll currently holds).

Harness: a primary ingests a bursty sliding-window stream on a
background thread while ``READERS`` reader threads issue mixed query
batches through :class:`~repro.service.query.QueryService` for a fixed
wall budget, at follower counts 0/1/2/4 (staggered background
replication shipping the WAL).  Per configuration we record answered
queries/sec and the read-lag distribution (p50/p99 rounds behind the
primary's durable tip), as a versioned JSON record that
``python -m repro.report --trace`` renders.
"""

from __future__ import annotations

import itertools
import pathlib
import random
import threading
import time

import numpy as np

from repro.analysis import format_table
from repro.graphgen import bursty_stream
from repro.replication import ReplicatedService
from repro.runtime import CostModel
from repro.service import QueryService, ServiceConfig
from repro.sliding_window import SWConnectivityEager
from repro.trace import TraceRecorder

#: One configuration's run (1 follower, first pass) is captured as a
#: replayable trace artifact -- concurrent writes and reads interleaved
#: exactly as the threads landed them (docs/tracing.md).
TRACE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results"
    / "replication_reads.trace.jsonl"
)

N = 512
FOLLOWER_COUNTS = [0, 1, 2, 4]
READERS = 4
MEASURE_S = 2.0
PASSES = 2
INGEST_ROUNDS = 400
BASE_BATCH = 8
BURST_BATCH = 24
WINDOW = 1024
SNAPSHOT_EVERY = 0  # no checkpoint stalls mid-measurement
SHIP_INTERVAL_S = 0.05  # per shipped round; scaled by follower count
SHIP_BATCH = 1
QUERY_BATCH = [
    ("connected", 0, 1),
    ("connected", 2, 3),
    ("path_max", 0, 4),
    ("components",),
    ("window_size",),
]


def _run_config(
    followers: int, tmp_path, engine: str, cost: CostModel, recorder=None
):
    """One configuration: returns (queries/sec, lag p50, lag p99)."""

    def factory():
        return SWConnectivityEager(N, seed=13, cost=cost, engine=engine)

    cfg = ServiceConfig(
        flush_edges=10**9,
        snapshot_every=SNAPSHOT_EVERY,
        fsync=True,
        recorder=recorder,
    )
    data_dir = tmp_path / f"repl-{followers}"
    rng = random.Random(13)
    stream = bursty_stream(
        N,
        rounds=INGEST_ROUNDS,
        base_batch=BASE_BATCH,
        burst_batch=BURST_BATCH,
        window=WINDOW,
        rng=rng,
    )

    with ReplicatedService(factory, data_dir, cfg, followers=followers) as rs:
        # Spread reads across every replica the consistency level allows
        # (no tokens here, so the whole fleet): per-replica lock stalls
        # during replay polls then hit 1/k of the readers, not all.
        qs = QueryService(
            rs, on_lag="catch_up", spread_lag=10**9, recorder=recorder
        )
        stop = threading.Event()

        def ingest():
            # Cycle the stream so ingest outlasts the measurement window
            # regardless of the fsync-bound commit rate.
            for b in itertools.cycle(stream):
                if stop.is_set():
                    return
                rs.write(b.edges, expire=b.expire)

        answered = [0] * READERS
        lags: list[list[int]] = [[] for _ in range(READERS)]

        def read(slot: int) -> None:
            deadline = time.perf_counter() + MEASURE_S
            while time.perf_counter() < deadline:
                res = qs.run(QUERY_BATCH)
                answered[slot] += len(res.answers)
                lags[slot].append(max(0, rs.primary.next_lsn - res.lsn))

        if followers:
            # A fixed *aggregate* replication budget: each follower ships
            # one round per poll, polling 1/k as often with k followers,
            # so replay steals the same CPU share at every follower count
            # and backlog shows up as (reported) lag instead.
            rs.start_replication(
                interval=SHIP_INTERVAL_S * followers, max_records=SHIP_BATCH
            )
        writer = threading.Thread(target=ingest, daemon=True)
        writer.start()
        # Warm the window so queries see a populated structure.
        time.sleep(0.05)
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=read, args=(i,)) for i in range(READERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        stop.set()
        writer.join()
        if followers:
            rs.stop_replication()

    lag_all = np.asarray([x for per in lags for x in per] or [0])
    p50, p99 = np.percentile(lag_all, [50, 99])
    return sum(answered) / wall, float(p50), float(p99)


def test_replication_reads(record_table, record_json, benchmark, engine, tmp_path):
    state: dict = {}

    def run():
        cost = CostModel()
        rows = []
        for k in FOLLOWER_COUNTS:
            # Best of PASSES runs: the sustainable rate, not the one most
            # perturbed by scheduler jitter.
            passes = []
            for i in range(PASSES):
                recorder = None
                if k == 1 and i == 0:
                    TRACE_PATH.parent.mkdir(exist_ok=True)
                    TRACE_PATH.unlink(missing_ok=True)
                    recorder = TraceRecorder(
                        TRACE_PATH,
                        meta={
                            "factory": {
                                "structure": "SWConnectivityEager",
                                "n": N,
                                "seed": 13,
                            },
                            "generator": {
                                "kind": "bench_replication_reads",
                                "followers": k,
                                "readers": READERS,
                            },
                        },
                    )
                passes.append(
                    _run_config(
                        k, tmp_path / f"p{i}", engine, cost, recorder=recorder
                    )
                )
                if recorder is not None:
                    recorder.close()
            best = max(passes, key=lambda r: r[0])
            rows.append((k, *best))
        state.clear()
        state.update(cost=cost, rows=rows)

    benchmark.pedantic(run, rounds=1, iterations=1)
    cost, rows = state["cost"], state["rows"]

    table = format_table(
        ["followers", "reads/s", "lag p50", "lag p99"],
        [
            [k, f"{tput:.0f}", f"{lag50:.1f}", f"{lag99:.1f}"]
            for k, tput, lag50, lag99 in rows
        ],
        title=(
            f"Replicated read scaling: {READERS} readers over QueryService, "
            f"n = {N}, ingest running, {MEASURE_S:.1f}s per config"
        ),
    )
    record_table("replication_reads", table)
    record_json(
        "replication_reads",
        cost,
        params={
            "n": N,
            "followers": FOLLOWER_COUNTS,
            "readers": READERS,
            "measure_s": MEASURE_S,
            "ingest_rounds": INGEST_ROUNDS,
            "base_batch": BASE_BATCH,
            "burst_batch": BURST_BATCH,
            "window": WINDOW,
            "snapshot_every": SNAPSHOT_EVERY,
            "seed": 13,
        },
        extra={
            "reads_per_sec": {str(k): t for k, t, _, _ in rows},
            "lag_p50": {str(k): p for k, _, p, _ in rows},
            "lag_p99": {str(k): p for k, _, _, p in rows},
            "trace": TRACE_PATH.name,
        },
    )
    assert TRACE_PATH.exists()  # the 1-follower pass left its trace
    tputs = [t for _, t, _, _ in rows]
    # Every replicated configuration must beat the 0-follower
    # (primary-only) floor, and adding followers must not collapse
    # throughput (30% scheduler-noise allowance -- the readers are
    # GIL-bound, so gains past the first follower come only from reduced
    # lock contention).
    assert min(tputs[1:]) > tputs[0]
    for prev, nxt in zip(tputs[1:], tputs[2:]):
        assert nxt >= 0.7 * prev
