"""ABL-queries -- the RC-tree query library: everything is O(lg n).

Section 2.2 cites RC trees answering "a multitude of different kinds of
queries ... all in O(lg n) time" [3].  This harness measures cost-model
work per query for connectivity, heaviest-edge, path aggregates, component
aggregates and eccentricity across an n sweep: per-query work must grow
logarithmically (far sublinearly) in n.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.graphgen import random_tree_edges
from repro.runtime import CostModel, measure
from repro.trees import DynamicForest

NS = [256, 1024, 4096]


def _forest(n: int, seed: int = 7) -> DynamicForest:
    rng = random.Random(seed)
    cost = CostModel()
    f = DynamicForest(n, seed=seed, cost=cost)
    f.batch_link(
        [(u, v, w, i) for i, (u, v, w) in enumerate(random_tree_edges(n, rng))]
    )
    return f


QUERIES = {
    "connected": lambda f, rng, n: f.connected(rng.randrange(n), rng.randrange(n)),
    "path_max": lambda f, rng, n: f.path_max(rng.randrange(n), rng.randrange(n)),
    "path_aggregate": lambda f, rng, n: f.path_aggregate(
        rng.randrange(n), rng.randrange(n)
    ),
    "component_size": lambda f, rng, n: f.component_size(rng.randrange(n)),
    "diameter": lambda f, rng, n: f.component_diameter(rng.randrange(n)),
    "eccentricity": lambda f, rng, n: f.eccentricity(rng.randrange(n)),
}


def test_query_work_logarithmic(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        rows = []
        for n in NS:
            f = _forest(n)
            costs.append(f.cost)
            rng = random.Random(n)
            row = [n]
            for name, q in QUERIES.items():
                with measure(f.cost) as c:
                    for _ in range(32):
                        q(f, rng, n)
                row.append(round(c.work / 32, 1))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["n", *QUERIES],
        rows,
        title="RC-tree query work per call (each column must grow ~lg n)",
    )
    record_table("queries_work", table)
    record_json(
        "queries_work",
        costs,
        params={"ns": NS, "queries": sorted(QUERIES), "reps": 32},
    )
    # 16x growth in n must cost well under 4x per query (lg 4096 / lg 256 = 1.5).
    for col in range(1, len(QUERIES) + 1):
        small, big = rows[0][col], rows[-1][col]
        assert big <= 4 * max(small, 1.0), (col, small, big)


@pytest.mark.parametrize("query", sorted(QUERIES))
def test_wallclock_query(benchmark, query, engine):
    n = 4096
    f = _forest(n)
    rng = random.Random(1)
    q = QUERIES[query]
    benchmark(lambda: q(f, rng, n))
