"""T1-kcert -- Table 1 row "k-certificate".

Claims: incremental O(k l alpha(n)) work; sliding window
O(k l lg(1 + n/l)) work; certificate of at most k (n - 1) edges
(Theorem 5.5).

Harness: per-edge work across k in {1, 2, 4, 8} for both models on the
same stream; asserts work grows ~linearly in k and the certificate size
bound holds while cuts <= k are preserved.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.connectivity import IncrementalKCertificate
from repro.graphgen import sliding_window_stream
from repro.runtime import CostModel, measure
from repro.sliding_window import SWKCertificate

N = 48  # dense window: replacements cascade through the k forests
KS = [1, 2, 4, 8]
ELL = 64


def _measure(model: str, k: int, seed: int) -> float:
    rng = random.Random(seed)
    cost = CostModel()
    if model == "window":
        struct = SWKCertificate(N, k=k, seed=seed, cost=cost)
    else:
        struct = IncrementalKCertificate(N, k=k, seed=seed, cost=cost)
    stream = sliding_window_stream(
        N, rounds=8, batch_size=ELL, window=4 * ELL, rng=rng
    )
    inserted = 0
    work = 0
    for b in stream:
        with measure(cost) as c:
            struct.batch_insert(list(b.edges))
            if model == "window" and b.expire:
                struct.batch_expire(b.expire)
        inserted += len(b.edges)
        work += c.work
    return work / max(inserted, 1), cost


def test_table1_row_kcertificate(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for k in KS:
            inc, inc_cost = _measure("incremental", k, 13)
            sw, sw_cost = _measure("window", k, 13)
            costs.extend([inc_cost, sw_cost])
            out.append((k, inc, sw))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_inc = data[0][1]
    base_sw = data[0][2]
    rows = [
        [k, f"{inc:.0f}", f"{inc / base_inc:.2f}", f"{sw:.0f}", f"{sw / base_sw:.2f}"]
        for k, inc, sw in data
    ]
    table = format_table(
        ["k", "incr work/edge", "vs k=1", "window work/edge", "vs k=1"],
        rows,
        title=f"Table 1 'k-certificate': per-edge work, n = {N}, l = {ELL}",
    )
    record_table("table1_kcertificate", table)
    record_json(
        "table1_kcertificate",
        costs,
        params={"n": N, "ks": KS, "ell": ELL, "rounds": 8, "seed": 13},
    )
    # Shape: work grows with k but sublinearly in this workload (later
    # forests see only the cascade, which shrinks), and never superlinearly.
    for k, inc, sw in data:
        assert inc <= base_inc * k * 1.5
        assert sw <= base_sw * k * 1.5
    assert data[-1][1] > base_inc  # k does cost something
    assert data[-1][2] > base_sw


def test_certificate_size_bound(record_table, benchmark, engine):
    rng = random.Random(3)
    n = 512

    def run_one(k):
        sw = SWKCertificate(n, k=k, seed=3)
        batch = []
        for _ in range(8 * n):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                batch.append((u, v))
        sw.batch_insert(batch)
        cert = sw.make_certificate()
        assert len(cert) <= k * (n - 1)
        return [k, len(cert), k * (n - 1)]

    rows = benchmark.pedantic(lambda: [run_one(k) for k in KS], rounds=1, iterations=1)
    record_table(
        "table1_kcertificate_size",
        format_table(
            ["k", "certificate edges", "bound k(n-1)"],
            rows,
            title="Theorem 5.5: certificate size never exceeds k(n-1)",
        ),
    )


@pytest.mark.parametrize("k", [2, 8])
def test_wallclock_insert(benchmark, k, engine):
    rng = random.Random(8)
    sw = SWKCertificate(N, k=k, seed=8)

    def setup():
        batch = []
        for _ in range(ELL):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                batch.append((u, v))
        return (batch,), {}

    benchmark.pedantic(lambda b: sw.batch_insert(b), setup=setup, rounds=3)
