"""T1-cycle -- Table 1 row "Cycle-freeness".

Claims: incremental O(l alpha(n)) work; sliding window O(l lg(1 + n/l))
work; ``hasCycle`` in O(1).

Harness: a mostly-tree stream with periodic cycle-closing pulses; measures
per-edge work in both models and checks the verdict follows cycles
entering and expiring out of the window.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.analysis import format_table
from repro.connectivity import IncrementalCycleFree
from repro.graphgen import cycle_pulse_stream, sliding_window_stream
from repro.runtime import CostModel, measure
from repro.sliding_window import SWCycleFree

N = 512
ELLS = [4, 16, 64, 256]


def _measure(model: str, ell: int, seed: int) -> float:
    rng = random.Random(seed)
    cost = CostModel()
    if model == "window":
        struct = SWCycleFree(N, seed=seed, cost=cost)
    else:
        struct = IncrementalCycleFree(N, seed=seed, cost=cost)
    stream = sliding_window_stream(N, rounds=5, batch_size=ell, window=4 * ell, rng=rng)
    inserted = 0
    work = 0
    for b in stream:
        with measure(cost) as c:
            struct.batch_insert(list(b.edges))
            if model == "window" and b.expire:
                struct.batch_expire(b.expire)
            struct.has_cycle()
        inserted += len(b.edges)
        work += c.work
    return work / max(inserted, 1), cost


def test_table1_row_cyclefree(record_table, record_json, benchmark, engine):
    costs: list[CostModel] = []

    def sweep():
        costs.clear()
        out = []
        for ell in ELLS:
            inc, inc_cost = _measure("incremental", ell, 19)
            sw, sw_cost = _measure("window", ell, 19)
            costs.extend([inc_cost, sw_cost])
            out.append((ell, inc, sw))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[ell, f"{inc:.0f}", f"{sw:.0f}"] for ell, inc, sw in data]
    table = format_table(
        ["l", "incr work/edge", "window work/edge"],
        rows,
        title=f"Table 1 'Cycle-freeness': per-edge work, n = {N}",
    )
    record_table("table1_cyclefree", table)
    record_json(
        "table1_cyclefree",
        costs,
        params={"n": N, "ells": ELLS, "rounds": 5, "seed": 19},
    )
    for _, inc, sw in data:
        assert inc < sw
        assert sw < N


def test_verdict_tracks_window(record_table, benchmark, engine):
    rng = random.Random(23)
    n = 64
    sw = SWCycleFree(n, seed=23)
    stream = cycle_pulse_stream(n, rounds=20, window=16, rng=rng, pulse_every=4)

    def drive():
        log = []
        window: list[tuple[int, int]] = []
        for b in stream:
            sw.batch_insert(list(b.edges))
            window.extend(b.edges)
            if b.expire:
                sw.batch_expire(b.expire)
                del window[: b.expire]
            g = nx.MultiGraph(window)
            g.add_nodes_from(range(n))
            expect = g.number_of_edges() > n - nx.number_connected_components(g)
            got = sw.has_cycle()
            assert got == expect
            log.append([len(window), "CYCLE" if got else "acyclic"])
        return log

    log = benchmark.pedantic(drive, rounds=1, iterations=1)
    states = {s for _, s in log}
    record_table(
        "table1_cyclefree_trace",
        format_table(
            ["window size", "state"],
            log,
            title="Cycle-freeness verdict over a pulsed stream",
        ),
    )
    assert states == {"CYCLE", "acyclic"}  # both states exercised


@pytest.mark.parametrize("ell", [16, 256])
def test_wallclock_round(benchmark, ell, engine):
    rng = random.Random(3)
    sw = SWCycleFree(N, seed=3)

    def setup():
        batch = []
        for _ in range(ell):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                batch.append((u, v))
        return (batch,), {}

    benchmark.pedantic(lambda b: sw.batch_insert(b), setup=setup, rounds=3)
