"""F2 -- Figure 2: a tree, its recursive clustering, and its RC tree.

Regenerates the worked example on the paper's 12-vertex tree {a..l}:
prints which vertices rake / compress / finalize in each contraction round
(Figure 2b) and an indented rendering of the RC tree (Figure 2c), then
validates the defining structural properties.  The exact clustering depends
on the contraction coins (as it does in the paper -- any legal clustering
is a valid Figure 2b), so the rendering is parameterized by the seed.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.paperdata import FIG2_NAMES, fig2_links
from repro.runtime import CostModel
from repro.trees import DynamicForest
from repro.trees.cluster import ClusterKind


def _build(seed: int = 2, engine: str | None = None) -> DynamicForest:
    f = DynamicForest(len(FIG2_NAMES), seed=seed, cost=CostModel(), engine=engine)
    f.batch_link(fig2_links())
    return f


def _name(rc, internal: int, ternary) -> str:
    owner = ternary.owner(internal)
    base = FIG2_NAMES[owner] if owner < len(FIG2_NAMES) else f"v{owner}"
    return base if internal == ternary.canonical(owner) else f"{base}'"


def _render_rc_tree(forest: DynamicForest) -> str:
    rc, tern = forest.rc, forest.ternary
    root = rc.root_cluster(tern.canonical(0))
    lines: list[str] = []

    def rec(node, depth):
        pad = "  " * depth
        if node.kind is ClusterKind.VERTEX:
            lines.append(f"{pad}vertex {_name(rc, node.rep, tern)}")
            return
        if node.kind is ClusterKind.EDGE:
            a, b = node.boundary
            lines.append(
                f"{pad}edge ({_name(rc, a, tern)}, {_name(rc, b, tern)})"
            )
            return
        kind = node.kind.value
        lines.append(
            f"{pad}{kind.upper()} cluster {_name(rc, node.rep, tern)}"
            f" (level {node.level})"
        )
        for c in sorted(node.children, key=lambda c: (c.kind.value, c.rep, c.eid)):
            rec(c, depth + 1)

    rec(root, 0)
    return "\n".join(lines)


def test_regenerate_figure2(record_table, record_json, benchmark):
    # Pinned to the object engine: the rendering below walks the per-node
    # cluster graph (vleaf / _dec / ClusterNode children), which only the
    # reference engine exposes.  The figure itself is engine-independent
    # -- both engines produce the identical contraction (snapshot-equal),
    # so there is nothing to A/B here.
    forest = benchmark.pedantic(
        lambda: _build(engine="object"), rounds=3, iterations=1
    )
    rc, tern = forest.rc, forest.ternary

    # Figure 2b: contraction schedule, round by round.
    rounds: dict[int, list[str]] = {}
    for v in rc.vleaf:
        lvl = rc._top[v]
        d = rc._dec[lvl][v]
        act = {"R": "rake", "C": "compress", "F": "finalize"}[d[0]]
        rounds.setdefault(lvl, []).append(f"{_name(rc, v, tern)}:{act}")
    sched_rows = [[lvl, ", ".join(sorted(acts))] for lvl, acts in sorted(rounds.items())]
    schedule = format_table(
        ["round", "contractions"],
        sched_rows,
        title="Figure 2b: recursive clustering by contraction round",
    )

    rendering = "Figure 2c: RC tree\n" + _render_rc_tree(forest)
    record_table("fig2_rctree_example", schedule + "\n\n" + rendering)
    record_json(
        "fig2_rctree_example",
        forest.cost,
        params={"n": len(FIG2_NAMES), "seed": 2, "engine": forest.engine},
    )

    # Structural validation (the properties the figure illustrates).
    root = rc.root_cluster(tern.canonical(0))
    assert root.kind is ClusterKind.NULLARY
    for v in rc.vleaf:
        assert rc.root_cluster(v) is root  # single component, single root
    rc.check_invariants()


def test_wallclock_build(benchmark, engine):
    benchmark(lambda: _build(engine=engine))
