"""THM3.2 -- compressed path tree construction: O(l lg(1 + n/l)) expected
work and O(lg n) span for l marked vertices.

Harness: on a fixed n-vertex tree (path = contraction worst case; random
recursive tree = typical case), sweep the number of marked vertices l and
measure the cost model's work for one CPT construction.  The claimed model
must out-fit l lg n and n, and the resulting CPT must stay O(l)-sized.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import BOUND_MODELS, format_table, goodness_of_fit
from repro.graphgen import path_edges, random_tree_edges
from repro.runtime import CostModel, measure
from repro.trees import DynamicForest

N = 8192
ELLS = [2, 8, 32, 128, 512, 2048]


def _forest(kind: str, n: int, seed: int) -> DynamicForest:
    rng = random.Random(seed)
    cost = CostModel()
    f = DynamicForest(n, seed=seed, cost=cost)
    edges = path_edges(n, rng) if kind == "path" else random_tree_edges(n, rng)
    f.batch_link([(u, v, w, i) for i, (u, v, w) in enumerate(edges)])
    return f


@pytest.mark.parametrize("kind", ["path", "random-tree"])
def test_cpt_work_scaling(record_table, record_json, benchmark, kind, engine):
    f = _forest(kind, N, seed=3)
    rng = random.Random(99)

    def sweep():
        out = []
        for ell in ELLS:
            marks = rng.sample(range(N), ell)
            with measure(f.cost) as c:
                cpt = f.compressed_path_tree(marks)
            out.append((ell, c.work, c.span, cpt.num_vertices, cpt.num_edges))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    xs = [(ell, N) for ell, *_ in data]
    ys = [work for _, work, *_ in data]
    rows = []
    for ell, work, span, nv, ne in data:
        bound = BOUND_MODELS["l*lg(1+n/l)"](ell, N)
        rows.append([ell, work, f"{work / bound:.1f}", span, nv, ne])
        assert nv <= 2 * ell  # Lemma 3.2: O(l) vertices
    fits = {
        name: goodness_of_fit(xs, ys, BOUND_MODELS[name])[1]
        for name in ("l*lg(1+n/l)", "l*lg(n)", "n")
    }
    table = format_table(
        ["l", "work", "work / (l lg(1+n/l))", "span", "CPT |V|", "CPT |E|"],
        rows,
        title=f"Theorem 3.2: CPT construction on a {kind}, n = {N}",
    )
    fit_table = format_table(
        ["model", "relative residual"],
        [[k, f"{v:.3f}"] for k, v in sorted(fits.items(), key=lambda kv: kv[1])],
    )
    record_table(f"thm32_cpt_scaling_{kind}", table + "\n\n" + fit_table)
    record_json(
        f"thm32_cpt_scaling_{kind}",
        f.cost,
        params={"n": N, "ells": ELLS, "kind": kind, "seed": 3},
        extra={"fit_residuals": {k: round(v, 6) for k, v in fits.items()}},
    )
    assert fits["l*lg(1+n/l)"] < fits["n"]


@pytest.mark.parametrize("ell", [2, 128, 2048])
def test_wallclock_cpt(benchmark, ell, engine):
    f = _forest("random-tree", N, seed=4)
    rng = random.Random(5)
    marks = rng.sample(range(N), ell)
    benchmark(lambda: f.compressed_path_tree(marks))
