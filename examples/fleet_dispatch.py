#!/usr/bin/env python
"""Road-network maintenance analytics with the RC-tree query toolkit.

Scenario: a logistics operator maintains the *active* road tree of a rural
region (a spanning forest of open roads; closures and re-openings arrive in
batches).  Dispatch needs instant answers to:

- are two depots reachable? what is the worst (heaviest-grade) road on the
  route, the total route distance, and the hop count?  (path aggregates)
- how large is a depot's reachable region, and what is its worst-case
  end-to-end distance (diameter) and the farthest site from the depot?
  (component aggregates + eccentricity toolkit, all O(lg n))

Everything updates under batch link/cut -- no recomputation from scratch.

Run:  python examples/fleet_dispatch.py
"""

import random

from repro.trees import DynamicForest

N = 400  # road junctions


def main() -> None:
    rng = random.Random(13)
    roads = DynamicForest(N, seed=1)

    # Build the initial road tree: junction i connects to an earlier one.
    links = []
    for v in range(1, N):
        u = rng.randrange(max(0, v - 20), v)  # local-ish connections
        links.append((u, v, round(rng.uniform(1.0, 15.0), 1), v))
    roads.batch_link(links)
    print(f"initial network: {roads.num_edges} roads, "
          f"{roads.num_components} regions")

    depot, site = 3, N - 5
    agg = roads.path_aggregate(depot, site)
    print(f"\nroute {depot} -> {site}:")
    print(f"  distance {agg.total:.1f} km over {agg.count} segments; "
          f"worst segment {agg.max_w:.1f} km (road id {agg.max_eid})")
    print(f"  region size {roads.component_size(depot)} junctions, "
          f"diameter {roads.component_diameter(depot):.1f} km")
    far, dist = roads.farthest_vertex(depot)
    print(f"  farthest site from depot: junction {far} at {dist:.1f} km")

    # A storm closes a batch of roads; crews reopen others.
    print("\n-- storm: 25 closures + 10 reopenings per round --")
    closed: list[tuple[int, int, float, int]] = []
    next_eid = N
    for day in range(5):
        live_ids = [eid for _, _, _, eid in roads.edges()]
        to_close = rng.sample(live_ids, min(25, len(live_ids)))
        info = [(eid, roads.edge_info(eid)) for eid in to_close]
        reopen = []
        for _ in range(min(10, len(closed))):
            u, v, w, _ = closed.pop(rng.randrange(len(closed)))
            if not roads.connected(u, v):
                reopen.append((u, v, w, next_eid))
                next_eid += 1
        roads.batch_update(links=reopen, cut_eids=to_close, check_forest=True)
        closed.extend((u, v, w, eid) for eid, (u, v, w) in info)

        reachable = roads.connected(depot, site)
        print(
            f"day {day}: {roads.num_components:4d} regions | depot region "
            f"size {roads.component_size(depot):4d}, "
            f"diameter {roads.component_diameter(depot):7.1f} km | "
            f"depot->site {'OK' if reachable else 'CUT OFF'}"
        )

    print("\nAll queries above are O(lg n) against the live structure --")
    print("the RC-tree augmentations of Section 2.2 [3], maintained by the")
    print("same change propagation that powers Algorithm 2.")


if __name__ == "__main__":
    main()
