#!/usr/bin/env python
"""Cut sparsification of a dense sliding window (Theorem 5.8).

Scenario: a stream of co-occurrence edges arrives far too fast to store;
we keep the sliding-window sparsifier (O(n polylog n) space) and, on
demand, produce a weighted subgraph whose cuts approximate the window's.
We validate the output here against the (small, so storable) ground truth:
random cuts and the global minimum cut.

Run:  python examples/sparsify_and_cut.py
"""

import random

from repro.mincut import global_min_cut
from repro.sliding_window import SWSparsifier

N = 32
ROUNDS = 6
BATCH = 120
WINDOW = 400


def cut_weight(edges, s, weighted=False):
    if weighted:
        return sum(w for u, v, w in edges if (u in s) != (v in s))
    return sum(1 for u, v in edges if (u in s) != (v in s))


def main() -> None:
    rng = random.Random(11)
    sp = SWSparsifier(N, eps=1.0, seed=5)
    window: list[tuple[int, int]] = []

    for r in range(ROUNDS):
        batch = []
        for _ in range(BATCH):
            u, v = rng.randrange(N), rng.randrange(N)
            if u != v:
                batch.append((u, v))
        sp.batch_insert(batch)
        window.extend(batch)
        if len(window) > WINDOW:
            expire = len(window) - WINDOW
            sp.batch_expire(expire)
            del window[:expire]
        print(f"round {r}: window holds {len(window)} edges "
              f"({sp.num_instances} sub-structures maintained)")

    sparsifier = sp.sparsify()
    total_w = sum(w for _, _, w in sparsifier)
    print(f"\nsparsifier: {len(sparsifier)} weighted edges standing in for "
          f"{len(window)} (total weight {total_w:.0f})")

    print("\nrandom cut comparison (window vs sparsifier):")
    print(f"{'cut |S|':>8} | {'exact':>6} | {'sparsified':>10} | ratio")
    for _ in range(6):
        s = set(rng.sample(range(N), rng.randrange(2, N - 1)))
        exact = cut_weight(window, s)
        approx = cut_weight(sparsifier, s, weighted=True)
        ratio = approx / exact if exact else float("nan")
        print(f"{len(s):>8} | {exact:>6} | {approx:>10.0f} | {ratio:.2f}")

    exact_mc = global_min_cut(N, window)
    approx_mc = global_min_cut(N, sparsifier)
    print(f"\nglobal min cut: exact {exact_mc:.0f}, on sparsifier "
          f"{approx_mc:.0f} (ratio {approx_mc / max(exact_mc, 1):.2f})")
    print("With the paper's full polylog constants the ratios concentrate")
    print("in [1-eps, 1+eps]; this demo runs the reduced-constant defaults.")


if __name__ == "__main__":
    main()
