#!/usr/bin/env python
"""Network telemetry over a sliding window: spanning cost and loop alarms.

Scenario: a datacenter fabric reports link measurements (latency-weighted
edges) as a stream.  Operations wants, over the most recent measurements
only:

- the approximate cost of a minimum spanning backbone (Theorem 5.4) --
  a capacity-planning signal that must track topology changes;
- an O(1) "is there a routing loop?" alarm (Theorem 5.6) as redundant
  links come and go;
- a k-certificate (Theorem 5.5) summarising whether the fabric would
  survive k - 1 link failures.

The monitors run behind :class:`repro.service.StreamService` -- the same
ingestion path a production deployment would use (micro-batching, and
optionally a write-ahead log; here in memory-only mode).  To show the
service is a pure transport, every round is mirrored into *direct*
twin structures and the answers are asserted identical.

The survivability monitor goes one step further: it runs *replicated*
(:class:`repro.replication.ReplicatedService` with a follower tailing
the WAL), and its reads route through
:class:`repro.service.QueryService` tagged with the round's LSN token --
read-your-writes, so the planner never reports a certificate older than
the measurements it just ingested.

Run:  python examples/network_telemetry.py
"""

import random
import tempfile

from repro.replication import ReplicatedService
from repro.service import QueryService, ServiceConfig, StreamService
from repro.sliding_window import SWApproxMSFWeight, SWCycleFree, SWKCertificate

ROUTERS = 128
WINDOW = 256
EPS = 0.25
MAX_LATENCY = 64.0
K = 3


def measurement_batch(rng: random.Random, redundancy: float):
    """Tree-ish measurements plus `redundancy` fraction of extra links."""
    out = []
    for _ in range(40):
        v = rng.randrange(1, ROUTERS)
        u = rng.randrange(v)  # spanning-ish link
        out.append((u, v, rng.uniform(1.0, MAX_LATENCY)))
    extras = int(40 * redundancy)
    for _ in range(extras):
        u, v = rng.randrange(ROUTERS), rng.randrange(ROUTERS)
        if u != v:
            out.append((u, v, rng.uniform(1.0, MAX_LATENCY)))
    return out


def run(data_dir: str) -> None:
    rng = random.Random(7)

    def make_direct_monitors():
        return (
            SWApproxMSFWeight(ROUTERS, eps=EPS, max_weight=MAX_LATENCY, seed=1),
            SWCycleFree(ROUTERS, seed=2),
            SWKCertificate(ROUTERS, k=K, seed=3),
        )

    # Production path: the scalar monitors behind streaming services
    # (memory-only here; pass data_dir= for a WAL + snapshots), and the
    # survivability monitor replicated -- a WAL-tailing follower serves
    # its reads, routed through QueryService with the write's LSN token.
    cfg = ServiceConfig(flush_edges=64)
    backbone_svc = StreamService(
        SWApproxMSFWeight(ROUTERS, eps=EPS, max_weight=MAX_LATENCY, seed=1),
        config=cfg,
    )
    loops_svc = StreamService(SWCycleFree(ROUTERS, seed=2), config=cfg)
    surviv_rs = ReplicatedService(
        lambda: SWKCertificate(ROUTERS, k=K, seed=3),
        data_dir,
        config=cfg,
        followers=1,
    )
    surviv_reads = QueryService(surviv_rs)
    # Reference path: the same monitors driven directly, no service.
    backbone_d, loops_d, surviv_d = make_direct_monitors()

    live = 0
    print(f"{'round':>5} | {'window':>6} | {'~backbone cost':>14} | "
          f"{'loop?':>5} | {f'{K}-connected':>12}")
    for r in range(16):
        redundancy = 1.5 if r >= 8 else 0.1  # fabric gets dense mid-run
        batch = measurement_batch(rng, redundancy)
        pairs = [(u, v) for u, v, _ in batch]

        backbone_svc.submit_insert(batch)
        loops_svc.submit_insert(pairs)
        backbone_d.batch_insert(batch)
        loops_d.batch_insert(pairs)
        surviv_d.batch_insert(pairs)
        live += len(batch)
        expire = max(0, live - WINDOW)
        if expire:
            backbone_svc.submit_expire(expire)
            loops_svc.submit_expire(expire)
            backbone_d.batch_expire(expire)
            loops_d.batch_expire(expire)
            surviv_d.batch_expire(expire)
            live = WINDOW
        backbone_svc.flush()
        loops_svc.flush()
        # One durable round on the replicated monitor; the returned LSN
        # is this round's consistency token.
        token = surviv_rs.write(pairs, expire=expire)

        cost = backbone_svc.query(lambda s: s.weight())
        loop = loops_svc.query(lambda s: s.has_cycle())
        # Read-your-writes: at_least=token means a replica may answer
        # only after replaying the round just committed.
        res = surviv_reads.run([("k_connected",)], at_least=token)
        assert res.lsn > token, "replica answered before replaying our write"
        (k_conn,) = res.answers
        # The service is a transport, not a transform: answers must match
        # the direct path exactly -- including across replication.
        assert cost == backbone_d.weight()
        assert loop == loops_d.has_cycle()
        assert k_conn == surviv_d.is_k_connected()

        print(
            f"{r:>5} | {live:>6} | {cost:>14.1f} | "
            f"{str(loop):>5} | {str(k_conn):>12}"
        )

    res = surviv_reads.run([("certificate",)], at_least=surviv_rs.primary.next_lsn - 1)
    (cert,) = res.answers
    assert sorted(cert) == sorted(surviv_d.make_certificate())
    backbone_svc.close()
    loops_svc.close()
    surviv_rs.close()
    print(f"\nFinal {K}-certificate: {len(cert)} links "
          f"(<= {K * (ROUTERS - 1)} by Theorem 5.5) summarise the window's")
    print("failure resilience; shipping it to the planner costs O(kn), not O(m);")
    print(f"served by {res.replica} at lsn {res.lsn} under a read-your-writes token.")
    print("(service, replica and direct paths agreed on every answer, every round)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="telemetry-") as data_dir:
        run(data_dir)


if __name__ == "__main__":
    main()
