#!/usr/bin/env python
"""Network telemetry over a sliding window: spanning cost and loop alarms.

Scenario: a datacenter fabric reports link measurements (latency-weighted
edges) as a stream.  Operations wants, over the most recent measurements
only:

- the approximate cost of a minimum spanning backbone (Theorem 5.4) --
  a capacity-planning signal that must track topology changes;
- an O(1) "is there a routing loop?" alarm (Theorem 5.6) as redundant
  links come and go;
- a k-certificate (Theorem 5.5) summarising whether the fabric would
  survive k - 1 link failures.

Run:  python examples/network_telemetry.py
"""

import random

from repro.sliding_window import SWApproxMSFWeight, SWCycleFree, SWKCertificate

ROUTERS = 128
WINDOW = 256
EPS = 0.25
MAX_LATENCY = 64.0
K = 3


def measurement_batch(rng: random.Random, redundancy: float):
    """Tree-ish measurements plus `redundancy` fraction of extra links."""
    out = []
    for _ in range(40):
        v = rng.randrange(1, ROUTERS)
        u = rng.randrange(v)  # spanning-ish link
        out.append((u, v, rng.uniform(1.0, MAX_LATENCY)))
    extras = int(40 * redundancy)
    for _ in range(extras):
        u, v = rng.randrange(ROUTERS), rng.randrange(ROUTERS)
        if u != v:
            out.append((u, v, rng.uniform(1.0, MAX_LATENCY)))
    return out


def main() -> None:
    rng = random.Random(7)
    backbone = SWApproxMSFWeight(
        ROUTERS, eps=EPS, max_weight=MAX_LATENCY, seed=1
    )
    loops = SWCycleFree(ROUTERS, seed=2)
    survivability = SWKCertificate(ROUTERS, k=K, seed=3)

    live = 0
    print(f"{'round':>5} | {'window':>6} | {'~backbone cost':>14} | "
          f"{'loop?':>5} | {f'{K}-connected':>12}")
    for r in range(16):
        redundancy = 1.5 if r >= 8 else 0.1  # fabric gets dense mid-run
        batch = measurement_batch(rng, redundancy)
        pairs = [(u, v) for u, v, _ in batch]

        backbone.batch_insert(batch)
        loops.batch_insert(pairs)
        survivability.batch_insert(pairs)
        live += len(batch)
        if live > WINDOW:
            expire = live - WINDOW
            backbone.batch_expire(expire)
            loops.batch_expire(expire)
            survivability.batch_expire(expire)
            live = WINDOW

        print(
            f"{r:>5} | {live:>6} | {backbone.weight():>14.1f} | "
            f"{str(loops.has_cycle()):>5} | "
            f"{str(survivability.is_k_connected()):>12}"
        )

    cert = survivability.make_certificate()
    print(f"\nFinal {K}-certificate: {len(cert)} links "
          f"(<= {K * (ROUTERS - 1)} by Theorem 5.5) summarise the window's")
    print("failure resilience; shipping it to the planner costs O(kn), not O(m).")


if __name__ == "__main__":
    main()
