#!/usr/bin/env python
"""Network telemetry over a sliding window: spanning cost and loop alarms.

Scenario: a datacenter fabric reports link measurements (latency-weighted
edges) as a stream.  Operations wants, over the most recent measurements
only:

- the approximate cost of a minimum spanning backbone (Theorem 5.4) --
  a capacity-planning signal that must track topology changes;
- an O(1) "is there a routing loop?" alarm (Theorem 5.6) as redundant
  links come and go;
- a k-certificate (Theorem 5.5) summarising whether the fabric would
  survive k - 1 link failures.

The monitors run behind :class:`repro.service.StreamService` -- the same
ingestion path a production deployment would use (micro-batching, and
optionally a write-ahead log; here in memory-only mode).  To show the
service is a pure transport, every round is mirrored into *direct*
twin structures and the answers are asserted identical.

Run:  python examples/network_telemetry.py
"""

import random

from repro.service import ServiceConfig, StreamService
from repro.sliding_window import SWApproxMSFWeight, SWCycleFree, SWKCertificate

ROUTERS = 128
WINDOW = 256
EPS = 0.25
MAX_LATENCY = 64.0
K = 3


def measurement_batch(rng: random.Random, redundancy: float):
    """Tree-ish measurements plus `redundancy` fraction of extra links."""
    out = []
    for _ in range(40):
        v = rng.randrange(1, ROUTERS)
        u = rng.randrange(v)  # spanning-ish link
        out.append((u, v, rng.uniform(1.0, MAX_LATENCY)))
    extras = int(40 * redundancy)
    for _ in range(extras):
        u, v = rng.randrange(ROUTERS), rng.randrange(ROUTERS)
        if u != v:
            out.append((u, v, rng.uniform(1.0, MAX_LATENCY)))
    return out


def main() -> None:
    rng = random.Random(7)

    def make_monitors():
        return (
            SWApproxMSFWeight(ROUTERS, eps=EPS, max_weight=MAX_LATENCY, seed=1),
            SWCycleFree(ROUTERS, seed=2),
            SWKCertificate(ROUTERS, k=K, seed=3),
        )

    # Production path: each monitor behind a streaming service (memory-only
    # here; pass data_dir= for a WAL + snapshots).  flush_edges=64 lets the
    # service coalesce a round's inserts before applying.
    cfg = ServiceConfig(flush_edges=64)
    services = [
        StreamService(s, config=cfg) for s in make_monitors()
    ]
    backbone_svc, loops_svc, surviv_svc = services
    # Reference path: the same monitors driven directly, no service.
    backbone_d, loops_d, surviv_d = make_monitors()

    live = 0
    print(f"{'round':>5} | {'window':>6} | {'~backbone cost':>14} | "
          f"{'loop?':>5} | {f'{K}-connected':>12}")
    for r in range(16):
        redundancy = 1.5 if r >= 8 else 0.1  # fabric gets dense mid-run
        batch = measurement_batch(rng, redundancy)
        pairs = [(u, v) for u, v, _ in batch]

        backbone_svc.submit_insert(batch)
        loops_svc.submit_insert(pairs)
        surviv_svc.submit_insert(pairs)
        backbone_d.batch_insert(batch)
        loops_d.batch_insert(pairs)
        surviv_d.batch_insert(pairs)
        live += len(batch)
        if live > WINDOW:
            expire = live - WINDOW
            for svc in services:
                svc.submit_expire(expire)
            backbone_d.batch_expire(expire)
            loops_d.batch_expire(expire)
            surviv_d.batch_expire(expire)
            live = WINDOW
        for svc in services:
            svc.flush()

        cost = backbone_svc.query(lambda s: s.weight())
        loop = loops_svc.query(lambda s: s.has_cycle())
        k_conn = surviv_svc.query(lambda s: s.is_k_connected())
        # The service is a transport, not a transform: answers must match
        # the direct path exactly.
        assert cost == backbone_d.weight()
        assert loop == loops_d.has_cycle()
        assert k_conn == surviv_d.is_k_connected()

        print(
            f"{r:>5} | {live:>6} | {cost:>14.1f} | "
            f"{str(loop):>5} | {str(k_conn):>12}"
        )

    cert = surviv_svc.query(lambda s: s.make_certificate())
    assert sorted(cert) == sorted(surviv_d.make_certificate())
    for svc in services:
        svc.close()
    print(f"\nFinal {K}-certificate: {len(cert)} links "
          f"(<= {K * (ROUTERS - 1)} by Theorem 5.5) summarise the window's")
    print("failure resilience; shipping it to the planner costs O(kn), not O(m).")
    print("(service and direct paths agreed on every answer, every round)")


if __name__ == "__main__":
    main()
