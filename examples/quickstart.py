#!/usr/bin/env python
"""Quickstart: the batch-incremental MSF in five minutes.

Builds a minimum spanning forest over a small road-network-like graph,
inserts edge batches (watching cheaper edges evict expensive ones), runs
connectivity and heaviest-edge queries, and peeks at the compressed path
tree -- the paper's key ingredient.

Run:  python examples/quickstart.py
"""

from repro.core import BatchIncrementalMSF
from repro.runtime import CostModel


def main() -> None:
    # A 10-vertex graph; think of vertices as towns and weights as road cost.
    cost = CostModel()
    msf = BatchIncrementalMSF(n=10, cost=cost)

    print("== batch 1: a first wave of roads ==")
    report = msf.batch_insert(
        [
            (0, 1, 4.0),
            (1, 2, 8.0),
            (2, 3, 7.0),
            (3, 4, 9.0),
            (0, 5, 11.0),
            (5, 6, 2.0),
            (6, 7, 6.0),
        ]
    )
    print(f"  inserted {len(report.inserted)} edges, "
          f"total weight {msf.total_weight():.1f}, "
          f"{msf.num_components} components")

    print("== batch 2: cheaper shortcuts arrive (batch insertion) ==")
    report = msf.batch_insert(
        [
            (1, 5, 1.0),   # cheap: will join the forest
            (2, 6, 3.0),   # cheap: may evict something expensive
            (0, 2, 30.0),  # expensive: closes a cycle, rejected
            (7, 8, 5.0),
            (8, 9, 5.5),
        ]
    )
    print(f"  inserted: {[(u, v, w) for u, v, w, _ in report.inserted]}")
    print(f"  evicted : {[(u, v, w) for u, v, w, _ in report.evicted]}")
    print(f"  rejected: {[(u, v, w) for u, v, w, _ in report.rejected]}")
    print(f"  total weight now {msf.total_weight():.1f}")

    print("== queries ==")
    print(f"  connected(0, 9)  = {msf.connected(0, 9)}")
    heaviest = msf.heaviest_edge(0, 9)
    print(f"  heaviest edge on the MSF path 0..9 = weight {heaviest[0]:.1f} "
          f"(edge id {heaviest[1]})")

    print("== the compressed path tree (Section 3) ==")
    cpt = msf.forest.compressed_path_tree([0, 4, 9])
    print(f"  marked {{0, 4, 9}} -> CPT on vertices {cpt.vertices}")
    for a, b, w, eid in cpt.edges:
        print(f"    {a} -- {b}: heaviest weight {w:.1f} (edge id {eid})")

    print("== simulated PRAM cost of everything above ==")
    print(f"  work = {cost.work}, span = {cost.span}")


if __name__ == "__main__":
    main()
