#!/usr/bin/env python
"""Streaming single-linkage clustering of sensor readings.

Scenario: sensors produce feature vectors; pairwise dissimilarities are
computed lazily (a batch of new comparisons per round, e.g. from an
approximate-nearest-neighbour pipeline).  The dendrogram must stay current:
single-linkage clustering *is* the minimum spanning forest, so
batch-incremental MSF maintenance (Algorithm 2) keeps every clustering
query at O(lg n) while batches arrive work-efficiently.

Also demonstrates the bottleneck/widest path applications on the same data.

Run:  python examples/similarity_clustering.py
"""

import math
import random

from repro.applications import BottleneckPaths, SingleLinkageClustering

SENSORS = 120
CLUSTERS = 3


def make_points(rng: random.Random) -> list[tuple[float, float]]:
    """Three planted Gaussian-ish blobs."""
    centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 9.0)]
    pts = []
    for i in range(SENSORS):
        cx, cy = centers[i % CLUSTERS]
        pts.append((cx + rng.gauss(0, 1.0), cy + rng.gauss(0, 1.0)))
    return pts


def main() -> None:
    rng = random.Random(3)
    pts = make_points(rng)
    sl = SingleLinkageClustering(SENSORS, seed=1)
    bp = BottleneckPaths(SENSORS, seed=2)

    def dist(i: int, j: int) -> float:
        (ax, ay), (bx, by) = pts[i], pts[j]
        return math.hypot(ax - bx, ay - by)

    print("streaming pairwise comparisons in batches of 200...")
    for round_ in range(8):
        batch = []
        for _ in range(200):
            i, j = rng.randrange(SENSORS), rng.randrange(SENSORS)
            if i != j:
                d = round(dist(i, j), 4)
                batch.append((i, j, d))
        sl.batch_insert(batch)
        bp.batch_insert(batch)
        print(
            f"  round {round_}: clusters @theta=2.5: {sl.num_clusters(2.5):3d} | "
            f"@4.0: {sl.num_clusters(4.0):3d} | components: {sl.num_components:3d}"
        )

    print("\ncluster structure at theta = 4.0 (planted: 3 blobs):")
    parts = [c for c in sl.clusters(4.0) if len(c) > 1]
    for c in parts[:5]:
        blobs = {i % CLUSTERS for i in c}
        print(f"  cluster of {len(c):3d} sensors, planted blobs inside: {sorted(blobs)}")

    a, b = 0, 1  # same blob vs different blobs
    c = 0, 2
    print(f"\nmerge distance sensors 0 and 3 (same blob):     "
          f"{sl.merge_distance(0, 3):.3f}")
    print(f"merge distance sensors 0 and 1 (different blob): "
          f"{sl.merge_distance(0, 1):.3f}")
    print(f"bottleneck route 0 -> 1 (minimax dissimilarity): "
          f"{bp.bottleneck(0, 1)[0]:.3f}")

    heights = sl.merge_heights()
    gaps = [(b - a, a) for a, b in zip(heights, heights[1:])]
    gap, at = max(gaps)
    print(f"\nlargest dendrogram gap {gap:.3f} just above height {at:.3f} -- "
          f"cutting there yields {sl.num_clusters(at):d} clusters")


if __name__ == "__main__":
    main()
