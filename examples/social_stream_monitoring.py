#!/usr/bin/env python
"""Sliding-window monitoring of a social interaction stream.

Scenario (the kind of workload the paper's introduction motivates): a
service receives a stream of "user A interacted with user B" events and
wants, over the **last hour only**, to answer:

- are two users in the same interaction community? (SW connectivity)
- how many communities are there right now? (numComponents, O(1))
- does the two-sided marketplace interaction graph stay bipartite
  (buyers <-> sellers), and when do buyer-buyer deals appear?

Events are synthesized with a planted community structure; each round
inserts a batch and expires everything older than the window.

Run:  python examples/social_stream_monitoring.py
"""

import random

from repro.sliding_window import SWBipartiteness, SWConnectivityEager

USERS = 200
COMMUNITIES = 4
WINDOW = 300  # keep the last 300 events
ROUNDS = 20
BATCH = 60


def community_of(u: int) -> int:
    return u % COMMUNITIES


def make_batch(rng: random.Random, cross_rate: float) -> list[tuple[int, int]]:
    """Mostly intra-community events; a few cross-community bridges."""
    out = []
    for _ in range(BATCH):
        if rng.random() < cross_rate:
            u, v = rng.randrange(USERS), rng.randrange(USERS)
        else:
            c = rng.randrange(COMMUNITIES)
            u = rng.randrange(USERS // COMMUNITIES) * COMMUNITIES + c
            v = rng.randrange(USERS // COMMUNITIES) * COMMUNITIES + c
        if u != v:
            out.append((u, v))
    return out


def main() -> None:
    rng = random.Random(42)
    conn = SWConnectivityEager(USERS, seed=1)
    market = SWBipartiteness(USERS, seed=2)

    live = 0
    print(f"{'round':>5} | {'window':>6} | {'communities':>11} | "
          f"{'0~1 same?':>9} | {'bipartite':>9}")
    for r in range(ROUNDS):
        # Bridges appear in the middle of the run, then fade out.
        cross = 0.2 if 6 <= r < 12 else 0.0
        batch = make_batch(rng, cross)

        # Marketplace stream: even ids are buyers, odd ids sellers; a
        # buyer-buyer event sneaks in while bridges are active.
        bip_batch = [(u - u % 2, v - v % 2 + 1) for u, v in batch]
        if cross:
            bip_batch.append((0, 2))  # buyer-buyer deal

        conn.batch_insert(batch)
        market.batch_insert(bip_batch)
        live += len(batch)
        if live > WINDOW:
            conn.batch_expire(live - WINDOW)
            live = WINDOW
        mlive = market.window_size
        if mlive > WINDOW:
            market.batch_expire(mlive - WINDOW)

        print(
            f"{r:>5} | {conn.window_size:>6} | {conn.num_components:>11} | "
            f"{str(conn.is_connected(0, 1)):>9} | "
            f"{str(market.is_bipartite()):>9}"
        )

    print("\nInterpretation: while bridge events are in the window the")
    print("communities merge (count drops, 0~1 connect) and buyer-buyer")
    print("deals break bipartiteness; once they expire, both recover --")
    print("no rescan of history needed (Theorems 5.2 and 5.3).")


if __name__ == "__main__":
    main()
