#!/usr/bin/env python
"""End-to-end smoke of the network serving tier, sized for CI.

One run stands up the full process topology from
:doc:`docs/gateway.md <../docs/gateway.md>` in miniature -- a durable
:class:`~repro.replication.replicated.ReplicatedService` primary, one
out-of-process follower worker (``python -m repro.replication.worker``)
tailing its WAL, and an HTTP :class:`~repro.gateway.server.Gateway`
routing reads to it -- then drives it with a few seconds of seeded
open-loop :func:`~repro.loadgen.run_load` traffic and asserts:

- ``GET /v1/health`` reports ``ok`` with the worker alive;
- the load run completed a nonzero number of reads *and* writes with no
  transport/HTTP-level error classes;
- shutdown is clean: the worker subprocess exits 0 after the gateway
  sends it a ``stop`` frame, and the gateway/service close without
  residue.

This is a liveness gate, not a performance one -- throughput numbers
come from ``benchmarks/bench_gateway.py``.  Prints one summary line and
``gateway smoke PASS`` on success; any assertion failure or a worker
that will not start/stop exits nonzero.

Usage::

    PYTHONPATH=src python scripts/gateway_smoke.py              # ~5 s run
    PYTHONPATH=src python scripts/gateway_smoke.py --duration 2
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import pathlib
import subprocess
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import Gateway, GatewayConfig  # noqa: E402
from repro.loadgen import LoadConfig, run_load  # noqa: E402
from repro.replication import ReplicatedService  # noqa: E402
from repro.replication.worker import build_factory  # noqa: E402
from repro.service import ServiceConfig  # noqa: E402

N = 64
SEED = 13
WORKER_READY_TIMEOUT_S = 30


def spawn_worker(data_dir: pathlib.Path) -> tuple[subprocess.Popen, str]:
    """Start one follower worker; returns (process, ``host:port``)."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.replication.worker",
            "--data-dir", str(data_dir),
            "--structure", "SWConnectivityEager",
            "--n", str(N), "--seed", str(SEED),
            "--port", "0", "--fid", "1",
            "--tail-interval", "0.01",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("REPRO-WORKER READY"):
        proc.kill()
        raise SystemExit(f"worker failed to start: {line!r}\n{proc.stderr.read()}")
    _, _, host, port, _ = line.split()
    return proc, f"{host}:{port}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=5.0,
                        help="load run length, seconds (default: 5)")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as tmp:
        data_dir = pathlib.Path(tmp) / "data"
        factory = build_factory("SWConnectivityEager", N, SEED)
        cfg = ServiceConfig(fsync=False, snapshot_every=0)
        with ReplicatedService(factory, data_dir, cfg, followers=1) as rs:
            # One committed round before the worker starts, so it has a
            # WAL to bootstrap from rather than an empty directory.
            rs.write([(0, 1)])
            proc, addr = spawn_worker(data_dir)
            gw = Gateway(rs, GatewayConfig(port=0, workers=(addr,))).start()
            try:
                host, port = gw.address
                report = run_load(host, port, LoadConfig(
                    duration_s=args.duration, clients=2000, think_s=5.0,
                    n=N, pool=4, seed=args.seed,
                ))

                conn = http.client.HTTPConnection(host, port, timeout=10)
                conn.request("GET", "/v1/health")
                health = json.loads(conn.getresponse().read())
                conn.close()

                failures = []
                if health.get("status") != "ok":
                    failures.append(f"health not ok: {health}")
                if not any(w.get("alive") for w in health.get("workers", [])):
                    failures.append(f"no live worker in health: {health}")
                if report.reads == 0:
                    failures.append("load run completed zero reads")
                if report.writes == 0:
                    failures.append("load run completed zero writes")
                if report.errors:
                    failures.append(f"request errors: {report.errors}")
            finally:
                gw.close(stop_workers=True)
            try:
                rc = proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                failures.append("worker did not exit after stop frame")
            else:
                if rc != 0:
                    failures.append(
                        f"worker exited {rc}: {proc.stderr.read()[-2000:]}"
                    )

    print(
        f"gateway smoke: {report.reads_per_s:.0f} reads/s, "
        f"{report.writes_per_s:.0f} writes/s, p99 {report.p99_ms:.1f} ms "
        f"over {args.duration:.0f}s with 1 worker process"
    )
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("gateway smoke PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
