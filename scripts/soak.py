#!/usr/bin/env python
"""Seeded chaos soak: drive a replicated service through a fault tape and
assert byte-identical convergence with the fault-free oracle.

One run plays a :class:`~repro.chaos.schedule.ChaosSchedule` (follower
kills/restarts, bounded storage fault windows via
:class:`~repro.chaos.faults.FaultyIO`, primary kills with promotion) of
at least ``--events`` adversities against a live
:class:`~repro.replication.replicated.ReplicatedService` while a bursty
sliding-window stream keeps committing rounds.  After the tape:

- every surviving node (the final primary and every follower, restarting
  the dead ones) must fingerprint byte-identical to
  :func:`~repro.chaos.schedule.replay_oracle` -- the winning WAL chain
  replayed on a fresh structure;
- the tape must have actually bitten (nonzero kills, promotions, and
  injected faults), so a pass cannot come from chaos never firing;
- the p99 per-round wall time must stay under ``--p99-ms`` (resilience
  must not buy correctness with unbounded stalls).

By default the soak runs both RC-tree engines back to back -- identical
logical state on ``array`` and ``object`` is part of the convergence
claim.  Prints one JSON summary per run plus a final verdict line; exit
status 0 only if every run converges inside the budget.

Usage::

    PYTHONPATH=src python scripts/soak.py                # defaults
    PYTHONPATH=src python scripts/soak.py --seed 99 --events 80
    PYTHONPATH=src python scripts/soak.py --engine array --p99-ms 500
    PYTHONPATH=src python scripts/soak.py --shards 4 --rounds 80

``--shards K`` (K > 1) switches to the sharded-tier soak: a
:class:`~repro.sharding.sharded.ShardedService` of K shard groups takes
a tape of shard-primary failovers (one kill/promotion per shard) while
a partition-skewed stream commits, and a mixed query batch must stay
byte-identical to the fault-free unsharded oracle after every few
rounds -- including the round of each promotion.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import tempfile
import time
import zlib

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.chaos import ChaosDriver, ChaosSchedule, FaultyIO  # noqa: E402
from repro.chaos.schedule import replay_oracle  # noqa: E402
from repro.gateway.protocol import dumps, jsonable  # noqa: E402
from repro.graphgen import bursty_stream  # noqa: E402
from repro.loadgen import PartitionSampler  # noqa: E402
from repro.replication import ReplicatedService  # noqa: E402
from repro.service import RetryPolicy, ServiceConfig  # noqa: E402
from repro.service.query import QueryService  # noqa: E402
from repro.sharding import (  # noqa: E402
    ShardRouter,
    ShardedService,
    make_member_factory,
)
from repro.sliding_window import SWConnectivityEager  # noqa: E402

N = 48
NO_SLEEP = lambda s: None  # noqa: E731


def derive_seed(base: int, label: str) -> int:
    """A distinct, deterministic sub-seed for one component of the soak.

    The tape, the fault injector, the edge stream, and the structure
    each get their own seed derived from the base -- one ``--seed``
    used verbatim everywhere couples their random streams (the same
    family of tapes always meets the same family of streams), so a
    whole dimension of interleavings never gets exercised no matter how
    the base rotates.
    """
    return (base * 2654435761 + zlib.crc32(label.encode())) % (2**31 - 1)


def seed_family(base: int) -> dict:
    """Every component seed one soak run uses, by name."""
    return {
        "base": base,
        "tape": derive_seed(base, "tape"),
        "faults": derive_seed(base, "faults"),
        "stream": derive_seed(base, "stream"),
        "structure": derive_seed(base, "structure"),
    }


def fingerprint(sw):
    return (
        sw.num_components,
        sorted(sw.forest_edges()),
        sw._msf.forest.rc.snapshot(),
    )


def soak_once(engine: str, args) -> dict:
    """One seeded soak on one engine; returns its JSON-ready summary."""
    seeds = seed_family(args.seed)

    def factory():
        return SWConnectivityEager(N, seed=seeds["structure"], engine=engine)

    faults = FaultyIO(
        seed=seeds["faults"],
        p_write_error=0.3,
        p_torn_write=0.2,
        p_fsync_error=0.2,
        p_read_error=0.2,
        p_bitflip=0.5,
        sleep=NO_SLEEP,
    )
    schedule = ChaosSchedule.generate(
        seed=seeds["tape"],
        events=args.events,
        steps=args.rounds,
        primary_kills=args.primary_kills,
    )
    rng = random.Random(seeds["stream"])
    stream = bursty_stream(
        N, rounds=args.rounds, base_batch=5, burst_batch=14, window=40, rng=rng
    )
    step_walls: list[float] = []
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        cfg = ServiceConfig(
            flush_edges=10**9,
            snapshot_every=10**9,  # keep the full chain for the oracle
            io=faults,
            retry=RetryPolicy(sleep=NO_SLEEP),
        )
        svc = ReplicatedService(
            factory,
            tmp,
            cfg,
            followers=args.followers,
            follower_retry=RetryPolicy(sleep=NO_SLEEP),
        )
        driver = ChaosDriver(svc, schedule, faults)
        t_run = time.perf_counter()
        for step, batch in enumerate(stream):
            t0 = time.perf_counter()
            driver.step(step, batch.edges, batch.expire)
            step_walls.append(time.perf_counter() - t0)
        driver.finish()
        run_wall = time.perf_counter() - t_run

        oracle, tip = replay_oracle(factory, tmp)
        want = fingerprint(oracle)
        if fingerprint(svc.primary.structure) != want:
            failures.append("primary diverges from oracle")
        if svc.primary.next_lsn != tip:
            failures.append(
                f"primary tip {svc.primary.next_lsn} != oracle tip {tip}"
            )
        for f in svc.followers:
            if not f.alive:
                f.restart()
            f.catch_up()
            if fingerprint(f.structure) != want:
                failures.append(f"follower {f.fid} diverges from oracle")
        svc.close()

    for key in ("follower_kills", "promotions"):
        if driver.stats[key] == 0:
            failures.append(f"tape never exercised {key}")
    if faults.injected == 0:
        failures.append("no faults were injected")
    walls = sorted(step_walls)
    p99_ms = walls[min(len(walls) - 1, int(0.99 * len(walls)))] * 1e3
    if p99_ms > args.p99_ms:
        failures.append(
            f"p99 step wall {p99_ms:.1f}ms exceeds budget {args.p99_ms}ms"
        )
    return {
        "engine": engine,
        "seed": args.seed,
        "seeds": seeds,
        "rounds": args.rounds,
        "events": sum(schedule.counts().values()),
        "event_counts": schedule.counts(),
        "stats": driver.stats,
        "faults_injected": faults.injected,
        "oracle_tip": tip,
        "p99_step_ms": round(p99_ms, 2),
        "wall_s": round(run_wall, 2),
        "failures": failures,
        "converged": not failures,
    }


def soak_sharded(engine: str, args) -> dict:
    """One seeded sharded soak: K shard groups vs. the unsharded oracle.

    A chaos tape of shard-primary kill/promotions plays against a live
    :class:`~repro.sharding.sharded.ShardedService` while a seeded
    partition-skewed stream keeps committing rounds; after every few
    rounds -- including immediately after each failover -- a mixed query
    batch must serialize byte-identical to the fault-free unsharded
    oracle's answer under the matching tokens.
    """
    seeds = seed_family(args.seed)
    tape = random.Random(seeds["tape"])
    # One promotion per shard, at distinct steps spread across the
    # middle of the stream.
    promote_steps = dict(
        zip(
            tape.sample(
                range(args.rounds // 4, 3 * args.rounds // 4), args.shards
            ),
            range(args.shards),
        )
    )
    router = ShardRouter(N, args.shards, scheme="hash")
    sampler = PartitionSampler(
        N, 1.1, router=router, partition_skew=0.8
    )
    rng = random.Random(seeds["stream"])
    step_walls: list[float] = []
    failures: list[str] = []
    promotions = checks = 0
    with tempfile.TemporaryDirectory(prefix="repro-soak-shard-") as tmp:
        tmp_path = pathlib.Path(tmp)
        cfg = ServiceConfig(fsync=False, snapshot_every=0)
        svc = ShardedService(
            make_member_factory(N, seed=seeds["structure"], engine=engine),
            tmp_path / "sharded",
            router,
            cfg,
            followers=args.followers,
        )
        oracle = ReplicatedService(
            lambda: SWConnectivityEager(
                N, seed=seeds["structure"], engine=engine
            ),
            tmp_path / "oracle",
            cfg,
        )
        oq = QueryService(oracle)
        t_run = time.perf_counter()
        try:
            for step in range(args.rounds):
                t0 = time.perf_counter()
                edges = [sampler.draw_pair(rng) for _ in range(4)]
                expire = 2 if step % 3 == 2 else 0
                token = oracle.write(edges, expire)
                vector = svc.write(edges, expire=expire)
                if step in promote_steps:
                    shard = promote_steps[step]
                    svc.poll()
                    svc.promote(shard).close()
                    promotions += 1
                if step % 5 == 4 or step in promote_steps:
                    batch = [("components",), ("window_size",)]
                    for i in range(6):
                        kind = "connected" if i % 2 == 0 else "path_max"
                        batch.append((kind, *sampler.draw_pair(rng)))
                    want = oq.run(batch, at_least=token).answers
                    got = svc.query(batch, at_least=vector).answers
                    checks += 1
                    if dumps(jsonable(got)) != dumps(jsonable(want)):
                        failures.append(
                            f"step {step}: sharded {got} != oracle {want}"
                        )
                step_walls.append(time.perf_counter() - t0)
            run_wall = time.perf_counter() - t_run
        finally:
            oracle.close()
            svc.close()
    if promotions < args.shards:
        failures.append(f"tape promoted only {promotions} shard primaries")
    walls = sorted(step_walls)
    p99_ms = walls[min(len(walls) - 1, int(0.99 * len(walls)))] * 1e3
    if p99_ms > args.p99_ms:
        failures.append(
            f"p99 step wall {p99_ms:.1f}ms exceeds budget {args.p99_ms}ms"
        )
    return {
        "engine": engine,
        "mode": f"sharded-k{args.shards}",
        "seed": args.seed,
        "seeds": seeds,
        "rounds": args.rounds,
        "shards": args.shards,
        "promotions": promotions,
        "differential_checks": checks,
        "p99_step_ms": round(p99_ms, 2),
        "wall_s": round(run_wall, 2),
        "failures": failures,
        "converged": not failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/soak.py", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--seed", type=int, default=7, help="tape seed")
    parser.add_argument(
        "--events", type=int, default=50, help="adversities in the tape (>= 50 for the acceptance soak)"
    )
    parser.add_argument(
        "--rounds", type=int, default=160, help="stream rounds to commit"
    )
    parser.add_argument(
        "--primary-kills", type=int, default=3, help="primary kills in the tape"
    )
    parser.add_argument(
        "--followers", type=int, default=3, help="replica fleet size"
    )
    parser.add_argument(
        "--engine",
        choices=["array", "object", "both"],
        default="both",
        help="RC-tree engine(s) to soak (default: both)",
    )
    parser.add_argument(
        "--p99-ms",
        type=float,
        default=2000.0,
        help="p99 per-round wall budget in milliseconds",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "run the sharded-tier soak over K shard groups instead "
            "(failovers + differential vs. the unsharded oracle)"
        ),
    )
    args = parser.parse_args(argv)

    engines = ["array", "object"] if args.engine == "both" else [args.engine]
    ok = True
    for engine in engines:
        if args.shards > 1:
            summary = soak_sharded(engine, args)
        else:
            summary = soak_once(engine, args)
        print(json.dumps(summary, sort_keys=False))
        if not summary["converged"]:
            # A red soak must be reproducible from the log alone: name
            # every component seed and the exact command that replays it.
            print(
                f"soak FAIL on {engine}: seeds {json.dumps(summary['seeds'])}",
                file=sys.stderr,
            )
            print(
                "reproduce with: PYTHONPATH=src python scripts/soak.py "
                f"--seed {args.seed} --events {args.events} "
                f"--rounds {args.rounds} "
                f"--primary-kills {args.primary_kills} "
                f"--followers {args.followers} --engine {engine} "
                f"--shards {args.shards}",
                file=sys.stderr,
            )
        ok &= summary["converged"]
    print(
        f"soak {'PASS' if ok else 'FAIL'}: seed {args.seed}, "
        f"{args.events} events x {len(engines)} engine(s)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
