#!/usr/bin/env python
"""End-to-end smoke of the sharded serving tier, sized for CI.

One run stands up the sharded topology from docs/sharding.md in
miniature -- a :class:`~repro.sharding.sharded.ShardedService` of two
shard groups (each a durable
:class:`~repro.replication.replicated.ReplicatedService` with one
follower) behind an HTTP :class:`~repro.gateway.server.Gateway` -- and
asserts three things end to end:

- **Liveness.**  A few seconds of seeded partition-skewed
  :func:`~repro.loadgen.run_load` traffic (drawn against the deployed
  router, ``--shards 2``) completes nonzero reads and writes with no
  transport/HTTP error classes, and ``GET /v1/health`` reports the
  sharded fleet ``ok``.
- **The differential contract.**  A seeded stream mirrored into an
  unsharded oracle: every read through the HTTP front door -- under the
  vector token the sharded write returned -- must be byte-identical to
  the oracle's :class:`~repro.service.query.QueryService` answer under
  the matching scalar token.
- **Failover.**  Mid-stream, one shard group's primary is failed over
  to its follower; the response epoch vector must fence forward and the
  differential must keep holding afterwards.

This is a correctness/liveness gate sized well under a minute;
throughput numbers come from ``benchmarks/bench_shards.py``.  Prints a
summary line and ``shard smoke PASS`` on success; exits nonzero on any
failure.

Usage::

    PYTHONPATH=src python scripts/shard_smoke.py             # ~5 s run
    PYTHONPATH=src python scripts/shard_smoke.py --duration 2
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import random
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import Gateway, GatewayConfig  # noqa: E402
from repro.gateway.protocol import dumps, jsonable  # noqa: E402
from repro.loadgen import LoadConfig, PartitionSampler, run_load  # noqa: E402
from repro.replication import ReplicatedService  # noqa: E402
from repro.service import ServiceConfig  # noqa: E402
from repro.service.query import QueryService  # noqa: E402
from repro.sharding import (  # noqa: E402
    ShardRouter,
    ShardedService,
    make_member_factory,
)
from repro.sliding_window import SWConnectivityEager  # noqa: E402

N = 64
SEED = 13
SHARDS = 2
ROUNDS = 40
FAILOVER_AT = 20


def differential(host: str, port: int, svc, oracle, failures: list[str]):
    """Mirror a seeded stream through HTTP and the oracle; compare bytes."""
    oq = QueryService(oracle)
    sampler = PartitionSampler(
        N, 1.1, router=svc.router, partition_skew=0.8
    )
    rng = random.Random(SEED)
    conn = http.client.HTTPConnection(host, port, timeout=10)
    checks = 0
    try:
        for step in range(ROUNDS):
            edges = [sampler.draw_pair(rng) for _ in range(3)]
            expire = 2 if step % 4 == 3 else 0
            token = oracle.write(edges, expire)
            conn.request(
                "POST",
                "/v1/write",
                body=dumps(
                    {"edges": [list(e) for e in edges], "expire": expire}
                ),
                headers={"Content-Type": "application/json"},
            )
            body = json.loads(conn.getresponse().read())
            vector = body["lsn"]
            if step == FAILOVER_AT:
                svc.poll()
                svc.promote(1).close()
            want_epoch = svc.epochs
            if body["epoch"] != ([0, 0] if step <= FAILOVER_AT else want_epoch):
                failures.append(
                    f"step {step}: epoch vector {body['epoch']} != "
                    f"{want_epoch}"
                )
            if step % 4 == 1 or step in (FAILOVER_AT + 1, ROUNDS - 1):
                batch = [["components"], ["window_size"]]
                for i in range(6):
                    kind = "connected" if i % 2 == 0 else "path_max"
                    batch.append([kind, *sampler.draw_pair(rng)])
                conn.request(
                    "POST",
                    "/v1/read",
                    body=dumps({"queries": batch, "at_least": vector}),
                    headers={"Content-Type": "application/json"},
                )
                raw = conn.getresponse().read()
                prefix = b'{"answers":'
                got = raw[len(prefix): raw.index(b',"lsn":')]
                want = dumps(
                    jsonable(
                        oq.run(
                            [tuple(q) for q in batch], at_least=token
                        ).answers
                    )
                )
                checks += 1
                if got != want:
                    failures.append(
                        f"step {step}: sharded answers {got!r} != "
                        f"oracle {want!r}"
                    )
    finally:
        conn.close()
    if svc.epochs != [0, 1]:
        failures.append(f"failover never fenced: epochs {svc.epochs}")
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=5.0,
                        help="load run length, seconds (default: 5)")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    failures: list[str] = []
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="shard-smoke-") as tmp:
        tmp_path = pathlib.Path(tmp)
        cfg = ServiceConfig(fsync=False, snapshot_every=0)
        router = ShardRouter(N, SHARDS, scheme="hash")
        with ShardedService(
            make_member_factory(N, seed=SEED),
            tmp_path / "sharded",
            router,
            cfg,
            followers=1,
        ) as svc, ReplicatedService(
            lambda: SWConnectivityEager(N, seed=SEED),
            tmp_path / "oracle",
            cfg,
        ) as oracle:
            gw = Gateway(svc, GatewayConfig(port=0)).start()
            try:
                host, port = gw.address
                # Differential first, while the mirrored streams are the
                # *only* traffic; the open-loop load then piles on top
                # of the (post-failover) fleet for the liveness check.
                checks = differential(host, port, svc, oracle, failures)

                report = run_load(host, port, LoadConfig(
                    duration_s=args.duration, clients=1000, think_s=5.0,
                    n=N, pool=4, seed=args.seed,
                    shards=SHARDS, partition_skew=0.8,
                ))
                if report.reads == 0:
                    failures.append("load run completed zero reads")
                if report.writes == 0:
                    failures.append("load run completed zero writes")
                if report.errors:
                    failures.append(f"request errors: {report.errors}")

                conn = http.client.HTTPConnection(host, port, timeout=10)
                conn.request("GET", "/v1/health")
                health = json.loads(conn.getresponse().read())
                conn.close()
                if health.get("status") != "ok":
                    failures.append(f"health not ok: {health}")
                if not health.get("sharded") or len(
                    health.get("shards", [])
                ) != SHARDS:
                    failures.append(f"health fleet malformed: {health}")
            finally:
                gw.close()

    print(
        f"shard smoke: {SHARDS} shard groups, "
        f"{report.reads_per_s:.0f} reads/s, "
        f"{report.writes_per_s:.0f} writes/s over {args.duration:.0f}s; "
        f"{checks} differential checks incl. one failover, "
        f"{time.perf_counter() - t0:.1f}s total"
    )
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("shard smoke PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
