#!/usr/bin/env python
"""Lint the ``repro`` imports inside docs/*.md code blocks.

Documentation drifts when code moves; this linter keeps the drift visible.
It extracts every fenced ```python block from the given markdown files
(default: ``docs/*.md``, README.md, EXPERIMENTS.md), finds the
``import repro...`` / ``from repro... import ...`` statements in them, and
fails if any imported module or symbol does not resolve against the
installed ``repro`` package.

Only import statements are checked -- doc code blocks are illustrative
fragments, not runnable scripts -- but an import naming a symbol that no
longer exists is exactly the kind of rot this catches.

It also checks *coverage* in the other direction: every public module
under ``src/repro/`` (any ``.py`` file or package whose name does not
start with ``_``) must be mentioned by dotted name in at least one doc
page, so new code cannot land undocumented.  ``docs/api_overview.md``
keeps a module index for exactly this purpose.  The same goes for every
public ``batch_*`` method on the RC-tree engine seam (both engines plus
the :class:`DynamicForest` facade): each must be named in at least one
doc page -- docs/batch_queries.md documents the read kernels.

The third check is **internal links**: every markdown
``[text](target)`` cross-reference in the doc set must resolve — the
target file must exist relative to the page linking it, and a
``#fragment`` must name a real heading's GitHub-style anchor in the
target (or, for a bare ``#fragment``, in the same page).  External
``http(s)://`` and ``mailto:`` targets are skipped; a renamed doc page
or reworded heading fails the lint instead of shipping a dead link.

Exit status: 0 when every import resolves, every module is mentioned,
and every internal link lands, 1 otherwise (one line per failure).  Run
directly or via ``tests/test_docs_lint.py``.
"""

from __future__ import annotations

import ast
import importlib
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str) -> list[str]:
    """Every fenced ```python block in a markdown document."""
    return [m.group(1) for m in _FENCE.finditer(text)]


def repro_imports(block: str) -> list[tuple[str, str | None]]:
    """``(module, symbol)`` pairs imported from ``repro`` in ``block``.

    ``import repro.x.y`` yields ``("repro.x.y", None)``;
    ``from repro.x import a, b`` yields ``("repro.x", "a")``, ``("repro.x", "b")``.
    Lines that do not parse as imports (prose-ish fragments) are skipped.
    """
    out: list[tuple[str, str | None]] = []
    for line in block.splitlines():
        stripped = line.strip()
        if not stripped.startswith(("import repro", "from repro")):
            continue
        try:
            tree = ast.parse(stripped)
        except SyntaxError:
            continue
        for node in tree.body:
            if isinstance(node, ast.Import):
                out.extend(
                    (alias.name, None)
                    for alias in node.names
                    if alias.name.split(".")[0] == "repro"
                )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "repro":
                    out.extend(
                        (node.module, alias.name)
                        for alias in node.names
                        if alias.name != "*"
                    )
    return out


def check_file(path: pathlib.Path) -> list[str]:
    """Failure messages for every unresolvable repro import in ``path``."""
    failures = []
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    for block in python_blocks(path.read_text()):
        for module, symbol in repro_imports(block):
            try:
                mod = importlib.import_module(module)
            except ImportError as exc:
                failures.append(f"{rel}: cannot import {module}: {exc}")
                continue
            if symbol is not None and not hasattr(mod, symbol):
                failures.append(f"{rel}: {module} has no symbol {symbol!r}")
    return failures


def public_modules(src: pathlib.Path | None = None) -> list[str]:
    """Dotted names of every public module and package under ``src/repro``.

    A module is public when no component of its path (below ``src``)
    starts with ``_``; packages are named by their ``__init__.py``.  The
    top-level ``repro`` package itself is omitted -- it is trivially
    mentioned everywhere.
    """
    src = src or REPO_ROOT / "src"
    names = set()
    for py in (src / "repro").rglob("*.py"):
        rel = py.relative_to(src).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if len(parts) < 2 or any(p.startswith("_") for p in parts):
            continue
        names.add(".".join(parts))
    return sorted(names)


def check_module_coverage(paths: list[pathlib.Path]) -> list[str]:
    """Failure messages for public modules no doc page mentions.

    A mention must be the exact dotted name: ``repro.service.wal`` does
    not cover the ``repro.service`` package, and a name embedded in a
    longer identifier does not count.  A trailing sentence period is fine
    (``see repro.service.``); a trailing ``.submodule`` is not.
    """
    corpus = "\n".join(p.read_text() for p in paths if p.exists())
    return [
        f"undocumented module: {name} (not mentioned in any doc page)"
        for name in public_modules()
        if not re.search(rf"(?<![\w.]){re.escape(name)}(?!\.?\w)", corpus)
    ]


def engine_batch_methods() -> list[str]:
    """Public ``batch_*`` methods on the RC-tree engine seam.

    Collected from both engine classes plus the :class:`DynamicForest`
    facade, so a batched entry point added to any layer of the read/update
    path must be named somewhere in the docs.
    """
    from repro.trees.forest import DynamicForest
    from repro.trees.rcarray import RCArrayForest
    from repro.trees.rcforest import RCForest

    names: set[str] = set()
    for cls in (RCForest, RCArrayForest, DynamicForest):
        for name, attr in vars(cls).items():
            if name.startswith("batch_") and callable(attr):
                names.add(name)
    return sorted(names)


def check_batch_method_coverage(paths: list[pathlib.Path]) -> list[str]:
    """Failure messages for engine-seam ``batch_*`` methods no doc page
    mentions by name (whole-word match)."""
    corpus = "\n".join(p.read_text() for p in paths if p.exists())
    return [
        f"undocumented batch method: {name} "
        "(no doc page mentions it by name)"
        for name in engine_batch_methods()
        if not re.search(rf"(?<!\w){re.escape(name)}(?!\w)", corpus)
    ]


_LINK = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.+?)\s*$", re.MULTILINE)


def markdown_links(text: str) -> list[str]:
    """Every ``[text](target)`` target in ``text``, code fences excluded.

    Fenced blocks hold code, not prose; a bracketed expression followed
    by a call in a snippet must not be mistaken for a link.
    """
    prose = re.sub(r"^```.*?^```\s*$", "", text, flags=re.MULTILINE | re.DOTALL)
    return [m.group(1) for m in _LINK.finditer(prose)]


def github_anchor(heading: str) -> str:
    """The GitHub-flavored anchor slug for a heading's text.

    Lowercase, formatting backticks dropped, everything outside
    ``[a-z0-9 _-]`` removed, spaces to hyphens -- the algorithm GitHub's
    renderer applies when it builds ``#fragment`` targets.
    """
    slug = heading.strip().lower().replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_anchors(path: pathlib.Path) -> set[str]:
    """Every anchor a page exposes (duplicate headings get ``-N``)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    text = re.sub(
        r"^```.*?^```\s*$", "", path.read_text(),
        flags=re.MULTILINE | re.DOTALL,
    )
    for m in _HEADING.finditer(text):
        base = github_anchor(m.group(2))
        n = seen.get(base, 0)
        seen[base] = n + 1
        anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


def check_links(paths: list[pathlib.Path]) -> list[str]:
    """Failure messages for internal links that do not resolve."""
    failures = []
    for path in paths:
        if not path.exists():
            continue
        rel = (
            path.relative_to(REPO_ROOT)
            if path.is_relative_to(REPO_ROOT)
            else path
        )
        for target in markdown_links(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            dest, _, fragment = target.partition("#")
            resolved = path if not dest else (path.parent / dest).resolve()
            if not resolved.exists():
                failures.append(f"{rel}: broken link {target!r}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved):
                    failures.append(
                        f"{rel}: link {target!r} names no heading anchor "
                        f"in {dest or rel}"
                    )
    return failures


def default_targets() -> list[pathlib.Path]:
    """The markdown files the repo promises to keep import-accurate."""
    targets = sorted((REPO_ROOT / "docs").glob("*.md"))
    for name in ("README.md", "EXPERIMENTS.md", "DESIGN.md"):
        p = REPO_ROOT / name
        if p.exists():
            targets.append(p)
    return targets


def main(argv: list[str]) -> int:
    explicit = [pathlib.Path(a) for a in argv]
    paths = explicit or default_targets()
    failures: list[str] = []
    checked = 0
    for path in paths:
        checked += 1
        failures.extend(check_file(path))
    failures.extend(check_links(paths))
    if not explicit:
        # Coverage only makes sense against the full doc set.
        failures.extend(check_module_coverage(paths))
        failures.extend(check_batch_method_coverage(paths))
    for msg in failures:
        print(msg, file=sys.stderr)
    if not failures:
        print(
            f"docs import lint: {checked} files clean, "
            f"{len(public_modules())} modules documented, "
            "all internal links resolve"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
