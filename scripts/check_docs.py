#!/usr/bin/env python
"""Lint the ``repro`` imports inside docs/*.md code blocks.

Documentation drifts when code moves; this linter keeps the drift visible.
It extracts every fenced ```python block from the given markdown files
(default: ``docs/*.md``, README.md, EXPERIMENTS.md), finds the
``import repro...`` / ``from repro... import ...`` statements in them, and
fails if any imported module or symbol does not resolve against the
installed ``repro`` package.

Only import statements are checked -- doc code blocks are illustrative
fragments, not runnable scripts -- but an import naming a symbol that no
longer exists is exactly the kind of rot this catches.

Exit status: 0 when every import resolves, 1 otherwise (one line per
failure).  Run directly or via ``tests/test_docs_lint.py``.
"""

from __future__ import annotations

import ast
import importlib
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str) -> list[str]:
    """Every fenced ```python block in a markdown document."""
    return [m.group(1) for m in _FENCE.finditer(text)]


def repro_imports(block: str) -> list[tuple[str, str | None]]:
    """``(module, symbol)`` pairs imported from ``repro`` in ``block``.

    ``import repro.x.y`` yields ``("repro.x.y", None)``;
    ``from repro.x import a, b`` yields ``("repro.x", "a")``, ``("repro.x", "b")``.
    Lines that do not parse as imports (prose-ish fragments) are skipped.
    """
    out: list[tuple[str, str | None]] = []
    for line in block.splitlines():
        stripped = line.strip()
        if not stripped.startswith(("import repro", "from repro")):
            continue
        try:
            tree = ast.parse(stripped)
        except SyntaxError:
            continue
        for node in tree.body:
            if isinstance(node, ast.Import):
                out.extend(
                    (alias.name, None)
                    for alias in node.names
                    if alias.name.split(".")[0] == "repro"
                )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "repro":
                    out.extend(
                        (node.module, alias.name)
                        for alias in node.names
                        if alias.name != "*"
                    )
    return out


def check_file(path: pathlib.Path) -> list[str]:
    """Failure messages for every unresolvable repro import in ``path``."""
    failures = []
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    for block in python_blocks(path.read_text()):
        for module, symbol in repro_imports(block):
            try:
                mod = importlib.import_module(module)
            except ImportError as exc:
                failures.append(f"{rel}: cannot import {module}: {exc}")
                continue
            if symbol is not None and not hasattr(mod, symbol):
                failures.append(f"{rel}: {module} has no symbol {symbol!r}")
    return failures


def default_targets() -> list[pathlib.Path]:
    """The markdown files the repo promises to keep import-accurate."""
    targets = sorted((REPO_ROOT / "docs").glob("*.md"))
    for name in ("README.md", "EXPERIMENTS.md", "DESIGN.md"):
        p = REPO_ROOT / name
        if p.exists():
            targets.append(p)
    return targets


def main(argv: list[str]) -> int:
    paths = [pathlib.Path(a) for a in argv] or default_targets()
    failures: list[str] = []
    checked = 0
    for path in paths:
        checked += 1
        failures.extend(check_file(path))
    for msg in failures:
        print(msg, file=sys.stderr)
    if not failures:
        print(f"docs import lint: {checked} files clean")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
