#!/usr/bin/env python
"""Trace-driven regression gates: replay golden traces, fail on drift.

Each golden trace under ``bench_results/traces/`` is a committed,
CRC-checked workload recording (see ``docs/tracing.md``).  One gate run,
per trace:

1. **Determinism** (hard gate): the trace replays on *both* RC-tree
   engines into byte-identical final state -- each replay must match the
   trace oracle, its own fault-free WAL oracle, and the other engine's
   fingerprint.  Any mismatch fails immediately; this is the
   correctness half of the gate and has no tolerance band.
2. **Performance** (banded gate): write p99 latency and reads/s are
   measured over ``--repeats`` replays (best-of, to shed scheduler
   noise) and compared against the trace's stored baseline
   (``<name>.baseline.json``): fail when p99 exceeds ``baseline.p99_ms
   * p99_tol`` or reads/s falls below ``baseline.reads_per_s *
   reads_tol``.  Committed tolerances are deliberately generous (CI
   runners vary wildly); tighten with ``--p99-tol`` / ``--reads-tol``
   for controlled environments.

``--handicap F`` multiplies the measured latency by ``F`` (and divides
reads/s) before the comparison -- the self-test lever: the suite proves
the gate *fails* on an injected 2x p99 regression, so a green gate
means the band is real, not vacuous.

Usage::

    PYTHONPATH=src python scripts/gate.py                  # gate all traces
    PYTHONPATH=src python scripts/gate.py --only smoke     # one trace
    PYTHONPATH=src python scripts/gate.py --update         # rebaseline
    PYTHONPATH=src python scripts/gate.py --emit smoke --rounds 24
    PYTHONPATH=src python scripts/gate.py --handicap 2.0 --p99-tol 1.4

Exit status 0 only when every selected trace passes both gates.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import tempfile

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.graphgen import bursty_stream  # noqa: E402
from repro.trace import (  # noqa: E402
    ReplayConfig,
    TraceReplayer,
    TraceWriter,
    read_trace,
    state_fingerprint,
    trace_oracle,
)
from repro.trace.replay import factory_from_meta  # noqa: E402

BASELINE_SCHEMA = "repro.trace/gate-baseline/v1"
TRACES_DIR = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results"
    / "traces"
)
ENGINES = ("array", "object")
#: Committed-baseline default bands: wide enough to hold across CI
#: runner generations, tight enough that a real 10x p99 blowup (or a
#: read path collapsing to 5% throughput) still trips.
DEFAULT_P99_TOL = 10.0
DEFAULT_READS_TOL = 0.05


def baseline_path(trace_path: pathlib.Path) -> pathlib.Path:
    """``<name>.baseline.json`` next to ``<name>.trace.jsonl``."""
    name = trace_path.name
    if name.endswith(".trace.jsonl"):
        name = name[: -len(".trace.jsonl")]
    else:
        name = trace_path.stem
    return trace_path.with_name(f"{name}.baseline.json")


def emit_trace(
    path: pathlib.Path,
    n: int = 128,
    seed: int = 13,
    rounds: int = 24,
    reads_every: int = 3,
    batch_queries: int = 8,
) -> dict:
    """Synthesize a golden trace: seeded bursty writes + grouped reads.

    The workload mirrors the chaos soak's stream (bursty arrivals, a
    sliding window of expirations) plus periodic read batches mixing
    grouped pair queries with scalar ones, stamped with synthetic
    arrival timestamps (5ms per round).  Fully determined by ``seed``,
    so the committed bytes are reproducible.
    """
    if path.exists():
        path.unlink()
    rng = random.Random(seed)
    meta = {
        "factory": {"structure": "SWConnectivityEager", "n": n, "seed": seed},
        "generator": {
            "kind": "bursty_stream+reads",
            "seed": seed,
            "rounds": rounds,
            "reads_every": reads_every,
            "batch_queries": batch_queries,
        },
    }
    with TraceWriter(path, meta=meta) as w:
        lsn = 0
        stream = bursty_stream(
            n, rounds=rounds, base_batch=6, burst_batch=16, window=40, rng=rng
        )
        for i, batch in enumerate(stream):
            ops: list[list] = []
            if batch.edges:
                ops.append(["i", [list(e) for e in batch.edges]])
            if batch.expire:
                ops.append(["e", int(batch.expire)])
            w.append(i * 5000, "write", {"lsn": lsn, "ops": ops})
            lsn += 1
            if i % reads_every == 0:
                queries = [
                    ["connected", rng.randrange(n), rng.randrange(n)]
                    for _ in range(batch_queries)
                ] + [["components"], ["window_size"]]
                w.append(
                    i * 5000 + 2500,
                    "read",
                    {"queries": queries, "at_least": lsn - 1},
                )
    return meta


def measure(
    trace_path: pathlib.Path, repeats: int = 3
) -> tuple[bool, str, float, float]:
    """Replay on both engines; returns ``(ok, why, p99_ms, reads_per_s)``.

    ``ok`` covers the determinism gate: every replay byte-identical to
    the trace oracle, its own WAL oracle, and across engines.  The perf
    numbers are best-of-``repeats`` on the default (array) engine.
    """
    meta, events = read_trace(trace_path)
    fingerprints: dict[str, tuple] = {}
    best_p99 = float("inf")
    best_reads = 0.0
    for engine in ENGINES:
        runs = repeats if engine == ENGINES[0] else 1
        for r in range(runs):
            with tempfile.TemporaryDirectory(prefix="trace-gate-") as tmp:
                result = TraceReplayer(
                    (meta, events),
                    factory=factory_from_meta(meta, engine=engine),
                    config=ReplayConfig(engine=engine),
                    data_dir=pathlib.Path(tmp) / "replay",
                ).run()
            if result.deterministic is False:
                return (
                    False,
                    f"{engine} replay diverged from its WAL oracle",
                    0.0,
                    0.0,
                )
            fingerprints[engine] = result.fingerprint
            if engine == ENGINES[0]:
                best_p99 = min(best_p99, result.write_p99_ms)
                best_reads = max(best_reads, result.reads_per_s)
    oracle, _ = trace_oracle(factory_from_meta(meta), events)
    want = state_fingerprint(oracle)
    for engine, fp in fingerprints.items():
        if fp != want:
            return (
                False,
                f"{engine} replay fingerprint differs from the trace oracle",
                0.0,
                0.0,
            )
    return True, "", best_p99, best_reads


def gate_one(
    trace_path: pathlib.Path,
    update: bool,
    handicap: float,
    p99_tol: float | None,
    reads_tol: float | None,
    repeats: int,
) -> bool:
    """Run (or rebaseline) one trace's gate; prints the verdict line."""
    name = trace_path.name
    ok, why, p99_ms, reads_per_s = measure(trace_path, repeats=repeats)
    if not ok:
        print(f"gate {name}: FAIL (determinism: {why})")
        return False
    p99_ms *= handicap
    reads_per_s /= handicap
    bpath = baseline_path(trace_path)
    if update:
        bpath.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "trace": name,
                    "p99_ms": round(p99_ms, 4),
                    "reads_per_s": round(reads_per_s, 2),
                    "p99_tol": p99_tol if p99_tol is not None else DEFAULT_P99_TOL,
                    "reads_tol": (
                        reads_tol if reads_tol is not None else DEFAULT_READS_TOL
                    ),
                    "engines": list(ENGINES),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(
            f"gate {name}: baseline updated "
            f"(p99 {p99_ms:.3f}ms, {reads_per_s:.0f} reads/s) -> {bpath}"
        )
        return True
    if not bpath.exists():
        print(f"gate {name}: FAIL (no baseline; run with --update first)")
        return False
    try:
        base = json.loads(bpath.read_text())
        if base.get("schema") != BASELINE_SCHEMA:
            raise ValueError(f"unknown baseline schema {base.get('schema')!r}")
        base_p99 = float(base["p99_ms"])
        base_reads = float(base["reads_per_s"])
    except (ValueError, KeyError) as exc:
        print(f"gate {name}: FAIL (unreadable baseline {bpath}: {exc})")
        return False
    tol_p99 = p99_tol if p99_tol is not None else float(
        base.get("p99_tol", DEFAULT_P99_TOL)
    )
    tol_reads = reads_tol if reads_tol is not None else float(
        base.get("reads_tol", DEFAULT_READS_TOL)
    )
    limit = base_p99 * tol_p99
    floor = base_reads * tol_reads
    failures = []
    if p99_ms > limit:
        failures.append(
            f"write p99 {p99_ms:.3f}ms > {limit:.3f}ms "
            f"(baseline {base_p99:.3f}ms x {tol_p99:g})"
        )
    if reads_per_s < floor:
        failures.append(
            f"reads/s {reads_per_s:.0f} < {floor:.0f} "
            f"(baseline {base_reads:.0f} x {tol_reads:g})"
        )
    verdict = "FAIL" if failures else "PASS"
    detail = (
        "; ".join(failures)
        if failures
        else (
            f"determinism ok (both engines), p99 {p99_ms:.3f}ms "
            f"<= {limit:.3f}ms, reads/s {reads_per_s:.0f} >= {floor:.0f}"
        )
    )
    print(f"gate {name}: {verdict} ({detail})")
    return not failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay golden traces as deterministic regression gates."
    )
    parser.add_argument(
        "--traces-dir",
        type=pathlib.Path,
        default=TRACES_DIR,
        help="directory of *.trace.jsonl golden traces",
    )
    parser.add_argument(
        "--only", help="gate only the trace whose filename contains this"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="measure and (re)write each trace's baseline instead of gating",
    )
    parser.add_argument(
        "--emit",
        metavar="NAME",
        help="synthesize a golden trace NAME.trace.jsonl (then --update it)",
    )
    parser.add_argument("--rounds", type=int, default=24, help="--emit rounds")
    parser.add_argument("--n", type=int, default=128, help="--emit vertices")
    parser.add_argument("--seed", type=int, default=13, help="--emit seed")
    parser.add_argument(
        "--handicap",
        type=float,
        default=1.0,
        help="multiply measured p99 (divide reads/s) before comparing -- "
        "the gate's self-test lever",
    )
    parser.add_argument(
        "--p99-tol",
        type=float,
        default=None,
        help="override the baseline's p99 tolerance multiplier",
    )
    parser.add_argument(
        "--reads-tol",
        type=float,
        default=None,
        help="override the baseline's reads/s floor fraction",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="replays per measurement (best-of, sheds scheduler noise)",
    )
    args = parser.parse_args(argv)

    args.traces_dir.mkdir(parents=True, exist_ok=True)
    if args.emit:
        path = args.traces_dir / f"{args.emit}.trace.jsonl"
        emit_trace(path, n=args.n, seed=args.seed, rounds=args.rounds)
        print(f"emitted {path}")
        if not args.update:
            return 0

    traces = sorted(args.traces_dir.glob("*.trace.jsonl"))
    if args.only:
        traces = [t for t in traces if args.only in t.name]
    if not traces:
        print(
            f"no traces matched under {args.traces_dir} "
            "(emit one with --emit NAME)",
            file=sys.stderr,
        )
        return 1
    ok = True
    for trace_path in traces:
        ok = gate_one(
            trace_path,
            update=args.update,
            handicap=args.handicap,
            p99_tol=args.p99_tol,
            reads_tol=args.reads_tol,
            repeats=args.repeats,
        ) and ok
    print(f"gate: {'PASS' if ok else 'FAIL'} ({len(traces)} trace(s))")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
